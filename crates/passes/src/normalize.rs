//! Normalization into the paper's normal form (§2.1).
//!
//! Translates a checked source program — array-syntax sections, nested
//! `CSHIFT`/`EOSHIFT` intrinsics, shifts of whole expressions — into the
//! common intermediate form every later pass operates on:
//!
//! * each shift intrinsic becomes a singleton whole-array assignment
//!   `TMP = CSHIFT(base, SHIFT=k, DIM=d)` ([`hpf_ir::Stmt::ShiftAssign`]);
//! * array-syntax operand sections are converted to shifts: a reference
//!   `SRC(1:N-2, 2:N-1)` under LHS section `(2:N-1, 2:N-1)` has offset −1 in
//!   dimension 1 and becomes `TMP = CSHIFT(SRC,-1,1)` exactly as in the
//!   paper's Figure 4;
//! * compute statements reference only perfectly aligned operands.
//!
//! Temporary arrays are drawn from a pool. [`TempPolicy::FreshPerShift`]
//! mimics the "most Fortran90 compilers will generate 12 temporary arrays"
//! behaviour the paper ascribes to xlhpf-class compilers (§4); with
//! [`TempPolicy::Reuse`] temporaries whose live ranges do not overlap share
//! storage, which is how the multi-statement Problem 9 runs in 3 temporary
//! arrays (§4.1).

use hpf_frontend::{CExpr, CStmt, Checked};
use hpf_ir::{
    ArrayDecl, ArrayId, Expr, OperandRef, Program, Section, ShiftKind, Span, Stmt, SymbolTable,
};

/// Temporary-array allocation policy during normalization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TempPolicy {
    /// One fresh temporary per shift intrinsic (the naive translation).
    FreshPerShift,
    /// Reuse temporaries whose live ranges have ended (per-statement
    /// liveness: a temp dies when the statement that consumes it is emitted).
    Reuse,
}

/// Statistics reported by normalization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    /// Shift assignments emitted (one per shift intrinsic or section offset).
    pub shifts: usize,
    /// Temporary arrays created.
    pub temps: usize,
}

/// Post-conditions of normalization, checked by the pipeline when
/// `CompileOptions::check_invariants` is set: the output is structurally
/// valid, in the §2.1 normal form (every compute operand distributed like
/// its LHS), and fully aligned (no offset references or overlap shifts yet —
/// those only appear after the offset-array stage).
pub fn post_conditions() -> &'static [hpf_analysis::Check] {
    use hpf_analysis::Check;
    &[Check::Validate, Check::NormalForm, Check::AlignedRefs]
}

struct Normalizer {
    symbols: SymbolTable,
    policy: TempPolicy,
    /// Free temporaries, keyed by (shape, dist index into symbols).
    pool: Vec<ArrayId>,
    stats: NormalizeStats,
}

/// Normalize a checked program into the IR normal form.
pub fn normalize(checked: &Checked, policy: TempPolicy) -> (Program, NormalizeStats) {
    let mut n = Normalizer {
        symbols: checked.symbols.clone(),
        policy,
        pool: Vec::new(),
        stats: NormalizeStats::default(),
    };
    let body = n.block(&checked.stmts);
    let mut program = Program::new(n.symbols);
    program.body = body;
    (program, n.stats)
}

impl Normalizer {
    fn block(&mut self, stmts: &[CStmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                CStmt::Assign { lhs, section, rhs, mask, span } => {
                    self.assign(*lhs, section, rhs, mask.as_deref(), *span, &mut out);
                }
                CStmt::Do { iters, body } => {
                    let inner = self.block(body);
                    out.push(Stmt::TimeLoop { iters: *iters, body: inner });
                }
            }
        }
        out
    }

    fn assign(
        &mut self,
        lhs: ArrayId,
        section: &Section,
        rhs: &CExpr,
        mask: Option<&(hpf_ir::expr::CmpOp, CExpr, CExpr)>,
        span: Span,
        out: &mut Vec<Stmt>,
    ) {
        // Masked assignment: lower `WHERE (a op b) lhs = rhs` to
        // `lhs = MERGE(rhs, lhs, a op b)` — a Select over an aligned read of
        // the LHS, so untouched elements keep their values.
        if let Some((op, a, b)) = mask {
            let mut stmt_temps = Vec::new();
            let ca = self.expr(a, section, out, &mut stmt_temps);
            let cb = self.expr(b, section, out, &mut stmt_temps);
            let cond = Expr::Cmp(*op, Box::new(ca), Box::new(cb));
            let then = self.expr(rhs, section, out, &mut stmt_temps);
            let els = Expr::Ref(OperandRef::aligned(lhs, section.rank()).at(span));
            out.push(Stmt::Compute {
                lhs,
                space: section.clone(),
                rhs: Expr::Select(Box::new(cond), Box::new(then), Box::new(els)),
            });
            self.release(&mut stmt_temps);
            return;
        }
        // A whole-array assignment whose RHS is a bare shift is already in
        // normal form: target the LHS directly instead of a temporary
        // (`RIP = CSHIFT(U,+1,1)` stays as-is, paper Figure 12).
        if let CExpr::Shift { arg, shift, dim, kind, .. } = rhs {
            let full = Section::full(&self.symbols.array(lhs).shape);
            if *section == full && *shift != 0 {
                let mut stmt_temps = Vec::new();
                let base = self.shift_operand(arg, out, &mut stmt_temps);
                if base != lhs {
                    out.push(Stmt::ShiftAssign {
                        dst: lhs,
                        src: base,
                        shift: *shift,
                        dim: *dim,
                        kind: *kind,
                    });
                    self.stats.shifts += 1;
                    self.release(&mut stmt_temps);
                    return;
                }
                // `A = CSHIFT(A, ...)`: shifting in place is unsafe; use the
                // temporary-based general path instead.
                self.release(&mut stmt_temps);
            }
        }
        let mut stmt_temps = Vec::new();
        let expr = self.expr(rhs, section, out, &mut stmt_temps);
        out.push(Stmt::Compute { lhs, space: section.clone(), rhs: expr });
        // Temps referenced by the compute statement die here.
        self.release(&mut stmt_temps);
    }

    fn release(&mut self, temps: &mut Vec<ArrayId>) {
        if self.policy == TempPolicy::Reuse {
            self.pool.append(temps);
        } else {
            temps.clear();
        }
    }

    /// Take a temp conformant with `like` from the pool or create one.
    fn temp(&mut self, like: ArrayId) -> ArrayId {
        let shape = self.symbols.array(like).shape.clone();
        let dist = self.symbols.array(like).dist.clone();
        if self.policy == TempPolicy::Reuse {
            if let Some(pos) = self.pool.iter().position(|&t| {
                self.symbols.array(t).shape == shape && self.symbols.array(t).dist == dist
            }) {
                return self.pool.swap_remove(pos);
            }
        }
        let name = self.symbols.fresh_temp_name();
        let decl = ArrayDecl::temp_like(name, self.symbols.array(like));
        self.stats.temps += 1;
        self.symbols.add_array(decl)
    }

    /// Normalize an expression under the statement's iteration space,
    /// emitting prelude shift statements into `out` and tracking the temps
    /// that remain live until the final compute statement in `live`.
    fn expr(
        &mut self,
        e: &CExpr,
        space: &Section,
        out: &mut Vec<Stmt>,
        live: &mut Vec<ArrayId>,
    ) -> Expr {
        match e {
            CExpr::Const(v) => Expr::Const(*v),
            CExpr::Scalar(s) => Expr::Scalar(*s),
            CExpr::Neg(a) => Expr::Neg(Box::new(self.expr(a, space, out, live))),
            CExpr::Bin(op, a, b) => {
                let ea = self.expr(a, space, out, live);
                let eb = self.expr(b, space, out, live);
                Expr::bin(*op, ea, eb)
            }
            CExpr::Sec { array, section, span } => {
                // Per-dimension offset of the operand section relative to the
                // iteration space (Figure 4's translation).
                let deltas: Vec<i64> =
                    (0..space.rank()).map(|d| section.dim(d).0 - space.dim(d).0).collect();
                let mut base = *array;
                for (d, &delta) in deltas.iter().enumerate() {
                    if delta != 0 {
                        base = self.emit_shift(base, delta, d, ShiftKind::Circular, out, live);
                    }
                }
                Expr::Ref(OperandRef::aligned(base, space.rank()).at(*span))
            }
            CExpr::Shift { arg, shift, dim, kind, span } => {
                let base = self.shift_operand(arg, out, live);
                let t = if *shift == 0 {
                    base
                } else {
                    self.emit_shift(base, *shift, *dim, *kind, out, live)
                };
                Expr::Ref(OperandRef::aligned(t, self.symbols.array(t).rank()).at(*span))
            }
        }
    }

    /// Reduce a shift argument to a whole array: either it already is one,
    /// or it is computed into a temporary first.
    fn shift_operand(
        &mut self,
        arg: &CExpr,
        out: &mut Vec<Stmt>,
        live: &mut Vec<ArrayId>,
    ) -> ArrayId {
        match arg {
            CExpr::Sec { array, section, .. } => {
                let full = Section::full(&self.symbols.array(*array).shape);
                assert_eq!(*section, full, "sema guarantees whole-array shift operands");
                *array
            }
            CExpr::Shift { arg: inner, shift, dim, kind, .. } => {
                let base = self.shift_operand(inner, out, live);
                if *shift == 0 {
                    base
                } else {
                    let t = self.emit_shift(base, *shift, *dim, *kind, out, live);
                    // This temp is consumed by the enclosing shift only; it
                    // dies as soon as that shift is emitted. Pull it out of
                    // the live set so the enclosing emit can reuse it…
                    // except the shift reading it must not also write it, so
                    // it is released by the caller via `release_after_use`.
                    t
                }
            }
            other => {
                // General expression under a shift: compute it into a temp
                // over the full space first.
                let arrays = referenced_arrays(other);
                let like =
                    *arrays.first().expect("sema guarantees shifts of array-valued expressions");
                let full = Section::full(&self.symbols.array(like).shape);
                let t = self.temp(like);
                let mut inner_live = Vec::new();
                let expr = self.expr(other, &full, out, &mut inner_live);
                out.push(Stmt::Compute { lhs: t, space: full, rhs: expr });
                self.release(&mut inner_live);
                t
            }
        }
    }

    /// Emit `t = SHIFT(base, amount, dim)`, releasing `base` immediately when
    /// it is a temporary that no later code can reference (single-consumer
    /// chains produced by `shift_operand`).
    fn emit_shift(
        &mut self,
        base: ArrayId,
        shift: i64,
        dim: usize,
        kind: ShiftKind,
        out: &mut Vec<Stmt>,
        live: &mut Vec<ArrayId>,
    ) -> ArrayId {
        let t = self.temp(base);
        out.push(Stmt::ShiftAssign { dst: t, src: base, shift, dim, kind });
        self.stats.shifts += 1;
        // If the base was a pending live temp consumed solely by this shift
        // (a chain), it dies now.
        if self.symbols.array(base).temp {
            if let Some(pos) = live.iter().position(|&x| x == base) {
                live.remove(pos);
                let mut v = vec![base];
                self.release(&mut v);
            }
        }
        live.push(t);
        t
    }
}

fn referenced_arrays(e: &CExpr) -> Vec<ArrayId> {
    let mut out = Vec::new();
    e.walk(&mut |n| {
        if let CExpr::Sec { array, .. } = n {
            if !out.contains(array) {
                out.push(*array);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;
    use hpf_ir::pretty;

    fn norm(src: &str, policy: TempPolicy) -> (Program, NormalizeStats) {
        normalize(&compile_source(src).unwrap(), policy)
    }

    /// The paper's Figure 1 → Figure 4 translation.
    const FIVE_POINT: &str = r#"
PROGRAM five
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1 = 1, C2 = 2, C3 = 3, C4 = 4, C5 = 5
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) &
                 + C2 * SRC(2:N-1,1:N-2) &
                 + C3 * SRC(2:N-1,2:N-1) &
                 + C4 * SRC(3:N,2:N-1) &
                 + C5 * SRC(2:N-1,3:N)
END
"#;

    #[test]
    fn five_point_matches_figure_4() {
        let (p, stats) = norm(FIVE_POINT, TempPolicy::FreshPerShift);
        // Four shifted operands -> four ShiftAssigns + one Compute.
        assert_eq!(stats.shifts, 4);
        assert_eq!(stats.temps, 4);
        assert_eq!(p.body.len(), 5);
        let printed = pretty::program(&p);
        assert!(printed.contains("TMP1 = CSHIFT(SRC,SHIFT=-1,DIM=1)"), "{printed}");
        assert!(printed.contains("TMP2 = CSHIFT(SRC,SHIFT=-1,DIM=2)"), "{printed}");
        assert!(printed.contains("TMP3 = CSHIFT(SRC,SHIFT=+1,DIM=1)"), "{printed}");
        assert!(printed.contains("TMP4 = CSHIFT(SRC,SHIFT=+1,DIM=2)"), "{printed}");
        // The compute statement references only aligned operands.
        match p.body.last().unwrap() {
            Stmt::Compute { rhs, space, .. } => {
                assert_eq!(*space, Section::new([(2, 7), (2, 7)]));
                rhs.for_each_ref(&mut |r| assert!(r.offsets.is_zero()));
            }
            other => panic!("{other:?}"),
        }
    }

    /// Figure 2: the single-statement 9-point CSHIFT stencil has 12 shift
    /// intrinsics → 12 temps under the naive policy (paper §4.1).
    const NINE_POINT_CSHIFT: &str = r#"
PROGRAM nine
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1=1, C2=2, C3=3, C4=4, C5=5, C6=6, C7=7, C8=8, C9=9
DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2) &
    + C2 * CSHIFT(SRC,-1,1) &
    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2) &
    + C4 * CSHIFT(SRC,-1,2) &
    + C5 * SRC &
    + C6 * CSHIFT(SRC,+1,2) &
    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2) &
    + C8 * CSHIFT(SRC,+1,1) &
    + C9 * CSHIFT(CSHIFT(SRC,+1,1),+1,2)
END
"#;

    #[test]
    fn nine_point_naive_needs_12_temps() {
        let (p, stats) = norm(NINE_POINT_CSHIFT, TempPolicy::FreshPerShift);
        assert_eq!(stats.shifts, 12, "12 CSHIFT intrinsics (paper §4)");
        assert_eq!(stats.temps, 12);
        assert_eq!(p.count_stmts(|s| s.is_comm()), 12);
    }

    #[test]
    fn nine_point_reuse_shares_chain_temps() {
        let (_, stats) = norm(NINE_POINT_CSHIFT, TempPolicy::Reuse);
        assert_eq!(stats.shifts, 12);
        // 8 temps are live in the final expression; chain intermediates are
        // recycled.
        assert!(stats.temps <= 9, "got {}", stats.temps);
        assert!(stats.temps >= 8);
    }

    /// Figure 3 (Problem 9) normalizes to Figure 12: user temporaries RIP/RIN
    /// plus a single shared compiler temporary.
    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    #[test]
    fn problem9_reuse_single_compiler_temp() {
        let (p, stats) = norm(PROBLEM9, TempPolicy::Reuse);
        assert_eq!(stats.shifts, 8);
        assert_eq!(stats.temps, 1, "one shared TMP (paper Figure 12)");
        // 8 shift assignments + 7 computes.
        assert_eq!(p.count_stmts(|s| s.is_comm()), 8);
        assert_eq!(p.count_stmts(|s| matches!(s, Stmt::Compute { .. })), 7);
    }

    #[test]
    fn problem9_fresh_policy_six_temps() {
        let (_, stats) = norm(PROBLEM9, TempPolicy::FreshPerShift);
        assert_eq!(stats.temps, 6, "one per hoisted CSHIFT");
    }

    #[test]
    fn zero_shift_is_elided() {
        let (p, stats) =
            norm("REAL A(4,4), B(4,4)\nA = CSHIFT(B, SHIFT=0, DIM=1)\n", TempPolicy::Reuse);
        assert_eq!(stats.shifts, 0);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn aligned_section_needs_no_shift() {
        let (p, stats) = norm(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nA(2:N-1,2:N-1) = B(2:N-1,2:N-1)\n",
            TempPolicy::Reuse,
        );
        assert_eq!(stats.shifts, 0);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn shift_of_expression_computes_temp_first() {
        let (p, stats) = norm(
            "REAL A(4,4), B(4,4), C(4,4)\nA = CSHIFT(B + C, SHIFT=1, DIM=1)\n",
            TempPolicy::Reuse,
        );
        assert_eq!(stats.shifts, 1);
        // temp = B + C ; A = CSHIFT(temp) (direct normal-form target)
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.body[0], Stmt::Compute { .. }));
        assert!(matches!(p.body[1], Stmt::ShiftAssign { .. }));
    }

    #[test]
    fn eoshift_kind_preserved() {
        let (p, _) = norm(
            "REAL A(4,4), B(4,4)\nA = EOSHIFT(B, SHIFT=1, DIM=2, BOUNDARY=7.0)\n",
            TempPolicy::Reuse,
        );
        match &p.body[0] {
            Stmt::ShiftAssign { kind, .. } => assert_eq!(*kind, ShiftKind::EndOff(7.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn time_loop_body_normalized() {
        let (p, stats) = norm(
            "REAL A(4,4), B(4,4)\nDO 3 TIMES\nA = CSHIFT(B, 1, 1)\nB = A\nENDDO\n",
            TempPolicy::Reuse,
        );
        assert_eq!(stats.shifts, 1);
        match &p.body[0] {
            Stmt::TimeLoop { iters, body } => {
                assert_eq!(*iters, 3);
                assert_eq!(body.len(), 2); // A = CSHIFT(B) direct, compute B
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn normal_form_validates() {
        for (src, policy) in [
            (FIVE_POINT, TempPolicy::FreshPerShift),
            (NINE_POINT_CSHIFT, TempPolicy::Reuse),
            (PROBLEM9, TempPolicy::Reuse),
        ] {
            let (p, _) = norm(src, policy);
            hpf_ir::validate::validate(&p, 1).unwrap();
            hpf_ir::validate::check_normal_form(&p).unwrap();
        }
    }

    #[test]
    fn mixed_whole_array_and_cshift_normalizes() {
        // A statement mixing an aligned whole-array operand with a shift.
        let (p, stats) = norm(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nA = B + CSHIFT(B, SHIFT=1, DIM=2)\n",
            TempPolicy::Reuse,
        );
        assert_eq!(stats.shifts, 1);
        assert_eq!(p.body.len(), 2);
        hpf_ir::validate::check_normal_form(&p).unwrap();
    }

    #[test]
    fn multi_dim_section_offsets_chain_shifts() {
        // Corner reference: offsets in both dimensions -> two chained shifts.
        let (p, stats) = norm(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nA(2:N-1,2:N-1) = B(1:N-2,3:N)\n",
            TempPolicy::Reuse,
        );
        assert_eq!(stats.shifts, 2);
        let shifts: Vec<_> = p
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::ShiftAssign { shift, dim, .. } => Some((*shift, *dim)),
                _ => None,
            })
            .collect();
        assert_eq!(shifts, vec![(-1, 0), (1, 1)]);
    }
}
