//! The offset-array optimization (paper §3.1).
//!
//! Eliminates the *intraprocessor* component of shift assignments by letting
//! the source and destination arrays share storage. A transformable
//! `DST = CSHIFT(SRC, SHIFT=k, DIM=d)` becomes
//! `CALL OVERLAP_SHIFT(SRC, SHIFT=k, DIM=d)` — only off-processor data
//! moves, into `SRC`'s overlap area — and every use of `DST` reached by the
//! definition is rewritten as the annotated offset reference `SRC<…,k,…>`.
//!
//! Multi-offset arrays arise when the source is itself an offset array
//! (Problem 9's `CSHIFT(RIP, …)` with `RIP ↦ U<+1,0>`): the offsets compose
//! additively and the emitted `OVERLAP_SHIFT` carries the source annotation,
//! exactly as in the paper's Figure 13.
//!
//! Safety criteria (checked per reached use on the block's def-use chains,
//! including the loop back-edge for time-loop bodies):
//!
//! * the total offset fits the machine's overlap width in every dimension;
//! * neither the base array nor the destination is destructively updated
//!   between the shift and the use;
//! * the use does not itself assign the base array (storage sharing would
//!   turn an aligned assignment into an in-place shifted one);
//! * the destination is not referenced outside the current basic block and
//!   no use is reached around the loop back-edge (conservative).
//!
//! When a shift is *not* transformable but its source has already been
//! turned into an offset array, semantics are repaired by materializing the
//! source with an inserted copy ([`hpf_ir::Stmt::Copy`]) — the paper's
//! criterion-violation repair.

use hpf_ir::defuse::{reached_uses, write_between, UseSite};
use hpf_ir::{ArrayId, Offsets, OperandRef, Program, Section, ShiftKind, Stmt, SymbolTable};
use std::collections::HashMap;

/// Statistics reported by the pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OffsetStats {
    /// Shift assignments converted to `OVERLAP_SHIFT`s.
    pub converted: usize,
    /// Shift assignments left as full shifts.
    pub kept: usize,
    /// Repair copies inserted for criterion violations.
    pub copies_inserted: usize,
    /// Arrays (typically temporaries) left with no remaining references —
    /// the storage reduction of §4.2.
    pub arrays_freed: usize,
}

/// Post-conditions of the offset-array conversion, checked by the pipeline
/// when `CompileOptions::check_invariants` is set: the output is still
/// structurally valid and halo-safe — every offset read it introduced is
/// covered by the `OVERLAP_SHIFT`s it placed, within the machine's overlap
/// width (the HS001/HS002 dataflow of `hpf-analysis`).
pub fn post_conditions() -> &'static [hpf_analysis::Check] {
    use hpf_analysis::Check;
    &[Check::Validate, Check::HaloSafe]
}

/// Run the offset-array optimization over every basic block of the program.
/// `halo` is the machine's overlap width.
pub fn run(program: &mut Program, halo: i64) -> OffsetStats {
    let mut stats = OffsetStats::default();
    let live_before = program.live_arrays().len();
    // Arrays read per block are needed to detect cross-block uses; gather
    // reads for each block first.
    let block_reads = collect_block_reads(program);
    let mut block_no = 0usize;
    // Ghost-region claims: which shift kind fills each (array, dim, side)
    // overlap area. Two kinds filling the same ghost region would leave one
    // rewritten use reading the other's values, so claims are exclusive
    // program-wide (conservative but safe).
    let mut claims: HashMap<(ArrayId, usize, i8), ShiftKind> = HashMap::new();
    process_blocks(
        &mut program.body,
        &program.symbols.clone(),
        false,
        halo,
        &block_reads,
        &mut block_no,
        &mut claims,
        &mut stats,
    );
    let live_after = program.live_arrays().len();
    stats.arrays_freed = live_before.saturating_sub(live_after);
    stats
}

/// Reads (interior) per block, in pre-order block numbering (top level = 0,
/// then each time-loop body in statement order, recursively).
fn collect_block_reads(program: &Program) -> Vec<Vec<ArrayId>> {
    fn walk(block: &[Stmt], out: &mut Vec<Vec<ArrayId>>) {
        let idx = out.len();
        out.push(Vec::new());
        for s in block {
            if let Stmt::TimeLoop { body, .. } = s {
                walk(body, out);
            } else {
                for r in s.reads() {
                    if let hpf_ir::stmt::Resource::Interior(a) = r {
                        if !out[idx].contains(&a) {
                            out[idx].push(a);
                        }
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(&program.body, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn process_blocks(
    block: &mut Vec<Stmt>,
    symbols: &SymbolTable,
    wrap: bool,
    halo: i64,
    block_reads: &[Vec<ArrayId>],
    block_no: &mut usize,
    claims: &mut HashMap<(ArrayId, usize, i8), ShiftKind>,
    stats: &mut OffsetStats,
) {
    let my_block = *block_no;
    // First transform this block, then recurse into nested loop bodies
    // (numbered in the order collect_block_reads assigned).
    run_block(block, symbols, wrap, halo, block_reads, my_block, claims, stats);
    for s in block.iter_mut() {
        if let Stmt::TimeLoop { body, .. } = s {
            *block_no += 1;
            process_blocks(body, symbols, true, halo, block_reads, block_no, claims, stats);
        }
    }
}

fn read_outside_block(array: ArrayId, block_reads: &[Vec<ArrayId>], my_block: usize) -> bool {
    block_reads.iter().enumerate().any(|(i, reads)| i != my_block && reads.contains(&array))
}

#[allow(clippy::too_many_arguments)]
fn run_block(
    block: &mut Vec<Stmt>,
    symbols: &SymbolTable,
    wrap: bool,
    halo: i64,
    block_reads: &[Vec<ArrayId>],
    my_block: usize,
    claims: &mut HashMap<(ArrayId, usize, i8), ShiftKind>,
    stats: &mut OffsetStats,
) {
    // alias: array -> (base array whose storage it shares, offset
    // annotation, the kind of the shifts that built the annotation)
    let mut alias: HashMap<ArrayId, (ArrayId, Offsets, ShiftKind)> = HashMap::new();
    let mut i = 0usize;
    while i < block.len() {
        match block[i].clone() {
            Stmt::ShiftAssign { dst, src, shift, dim, kind } => {
                // Resolve the source through the alias map (multi-offset).
                let (base, off0, kind0) = alias
                    .get(&src)
                    .cloned()
                    .unwrap_or_else(|| (src, Offsets::zero(symbols.array(src).rank()), kind));
                let off1 = off0.compose(&Offsets::unit(off0.rank(), dim, shift));
                let full = Section::full(&symbols.array(dst).shape);

                // Offset annotations compose additively, which matches
                // CSHIFT semantics unconditionally, but EOSHIFT truncates at
                // the boundary: `EOSHIFT(EOSHIFT(U,-1,1),+1,1)` is *not* U.
                // A multi-offset chain is therefore only valid when the
                // kinds match and, for end-off shifts, the new shift does
                // not cancel against the existing offset in its dimension.
                let composition_ok = off0.is_zero()
                    || (kind == kind0
                        && match kind {
                            ShiftKind::Circular => true,
                            ShiftKind::EndOff(_) => {
                                let prev = off0.dim(dim);
                                prev == 0 || prev.signum() == shift.signum()
                            }
                        });

                // The overlap area this shift fills must not already be
                // claimed by a shift of a different kind.
                let claim_key = (base, dim, shift.signum() as i8);
                let claim_ok = claims.get(&claim_key).is_none_or(|k| *k == kind);

                let transformable = composition_ok
                    && claim_ok
                    && off1.max_abs() <= halo
                    && dst != base
                    && !read_outside_block(dst, block_reads, my_block)
                    && uses_are_safe(block, i, dst, base, &full, wrap);

                if transformable {
                    let uses = reached_uses(block, i, dst, &full, wrap);
                    block[i] = Stmt::OverlapShift {
                        array: base,
                        src_offsets: off0.clone(),
                        shift,
                        dim,
                        rsd: None,
                        kind,
                    };
                    for u in &uses {
                        rewrite_use(&mut block[u.stmt], dst, base, &off1);
                    }
                    alias.insert(dst, (base, off1, kind));
                    claims.insert(claim_key, kind);
                    stats.converted += 1;
                } else {
                    // Not transformable. If the source was an offset array we
                    // must materialize it first (criterion-violation repair).
                    if alias.contains_key(&src) {
                        block.insert(
                            i,
                            Stmt::Copy { dst: src, src: OperandRef::offset(base, off0) },
                        );
                        alias.remove(&src);
                        stats.copies_inserted += 1;
                        i += 1; // the shift moved one slot down
                    }
                    alias.remove(&dst);
                    stats.kept += 1;
                }
            }
            other => {
                // Any interior write invalidates aliases that share the
                // written storage or that were the written array itself.
                for w in other.writes() {
                    if let hpf_ir::stmt::Resource::Interior(a) = w {
                        alias.retain(|k, (b, ..)| *k != a && *b != a);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Check the §3.1 criteria for every use reached by the definition.
fn uses_are_safe(
    block: &[Stmt],
    def_idx: usize,
    dst: ArrayId,
    base: ArrayId,
    full: &Section,
    wrap: bool,
) -> bool {
    let uses = reached_uses(block, def_idx, dst, full, wrap);
    for u in &uses {
        if u.wrapped {
            // Rewriting a back-edge use changes first-iteration semantics.
            return false;
        }
        let stmt = &block[u.stmt];
        match stmt {
            Stmt::Compute { .. } | Stmt::Copy { .. } => {
                if writes_interior_of(stmt, base) {
                    return false;
                }
                if !rewritable(stmt, dst) {
                    return false;
                }
            }
            Stmt::ShiftAssign { .. } => {
                // Consumed by a later shift: handled through the alias map;
                // nothing to rewrite here. Still subject to the path checks
                // below.
            }
            _ => return false, // time loops, overlap shifts: bail
        }
        let site = UseSite { stmt: u.stmt, wrapped: u.wrapped };
        if write_between(block, def_idx, site, base).is_some() {
            return false;
        }
        if write_between(block, def_idx, site, dst).is_some() {
            return false;
        }
    }
    true
}

fn writes_interior_of(stmt: &Stmt, array: ArrayId) -> bool {
    stmt.writes().contains(&hpf_ir::stmt::Resource::Interior(array))
}

/// A use is rewritable when every reference to `dst` carries a zero offset
/// annotation (normal-form references; anything else would need offset
/// composition on the reference, which the alias map handles for shifts).
fn rewritable(stmt: &Stmt, dst: ArrayId) -> bool {
    let mut ok = true;
    match stmt {
        Stmt::Compute { rhs, .. } => {
            rhs.for_each_ref(&mut |r| {
                if r.array == dst && !r.offsets.is_zero() {
                    ok = false;
                }
            });
        }
        Stmt::Copy { src, .. } if src.array == dst && !src.offsets.is_zero() => {
            ok = false;
        }
        _ => {}
    }
    ok
}

/// Rewrite references to `dst` as offset references to `base`.
fn rewrite_use(stmt: &mut Stmt, dst: ArrayId, base: ArrayId, off: &Offsets) {
    match stmt {
        Stmt::Compute { rhs, .. } => {
            rhs.for_each_ref_mut(&mut |r| {
                if r.array == dst {
                    r.array = base;
                    r.offsets = off.clone();
                }
            });
        }
        Stmt::Copy { src, .. } if src.array == dst => {
            src.array = base;
            src.offsets = off.clone();
        }
        // Shift uses resolve through the alias map instead.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use hpf_frontend::compile_source;
    use hpf_ir::pretty;

    fn run_src(src: &str, halo: i64) -> (Program, OffsetStats) {
        let checked = compile_source(src).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        let stats = run(&mut p, halo);
        hpf_ir::validate::validate(&p, halo).unwrap();
        (p, stats)
    }

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    /// The paper's Figure 12 → Figure 13 transformation.
    #[test]
    fn problem9_all_shifts_become_overlap_shifts() {
        let (p, stats) = run_src(PROBLEM9, 1);
        assert_eq!(stats.converted, 8);
        assert_eq!(stats.kept, 0);
        assert_eq!(stats.copies_inserted, 0);
        let printed = pretty::program(&p);
        // The multi-offset shifts carry the source annotation (Figure 13).
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U<+1,0>,SHIFT=-1,DIM=2)"), "{printed}");
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U<-1,0>,SHIFT=+1,DIM=2)"), "{printed}");
        // Corner references appear as composed offsets.
        assert!(printed.contains("U<+1,-1>"), "{printed}");
        assert!(printed.contains("U<-1,+1>"), "{printed}");
        // RIP / RIN / TMP are no longer referenced: storage freed (§4.2).
        assert_eq!(stats.arrays_freed, 3);
    }

    #[test]
    fn five_point_array_syntax_transforms_fully() {
        let (p, stats) = run_src(
            r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1=1, C2=2, C3=3, C4=4, C5=5
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) + C2 * SRC(2:N-1,1:N-2) &
                 + C3 * SRC(2:N-1,2:N-1) + C4 * SRC(3:N,2:N-1) + C5 * SRC(2:N-1,3:N)
"#,
            1,
        );
        assert_eq!(stats.converted, 4);
        assert_eq!(p.count_stmts(|s| matches!(s, Stmt::OverlapShift { .. })), 4);
        // The compute statement reads SRC with unit offsets.
        let mut offsets_seen = Vec::new();
        p.for_each_stmt(&mut |s| {
            if let Stmt::Compute { rhs, .. } = s {
                rhs.for_each_ref(&mut |r| offsets_seen.push(r.offsets.clone()));
            }
        });
        assert!(offsets_seen.contains(&Offsets::new([-1, 0])));
        assert!(offsets_seen.contains(&Offsets::new([0, -1])));
        assert!(offsets_seen.contains(&Offsets::new([0, 0])));
        assert!(offsets_seen.contains(&Offsets::new([1, 0])));
        assert!(offsets_seen.contains(&Offsets::new([0, 1])));
    }

    #[test]
    fn shift_wider_than_overlap_is_kept() {
        let (p, stats) =
            run_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(B, SHIFT=2, DIM=1)\n", 1);
        assert_eq!(stats.converted, 0);
        assert_eq!(stats.kept, 1);
        assert_eq!(p.count_stmts(|s| matches!(s, Stmt::ShiftAssign { .. })), 1);
        // With a wider overlap area it transforms.
        let (_, stats2) =
            run_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(B, SHIFT=2, DIM=1)\n", 2);
        assert_eq!(stats2.converted, 1);
    }

    #[test]
    fn composed_offsets_must_fit_overlap() {
        // Two chained unit shifts along the same dimension compose to 2.
        let (_, stats) =
            run_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(CSHIFT(B,1,1), 1, 1)\n", 1);
        // The inner shift converts; the outer would need offset 2 > halo and
        // is kept, forcing a repair copy of the inner offset array.
        assert_eq!(stats.converted, 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.copies_inserted, 1);
    }

    #[test]
    fn source_update_between_def_and_use_blocks() {
        let (p, stats) = run_src(
            r#"
PARAM N = 8
REAL A(N,N), B(N,N), T(N,N)
T = CSHIFT(B, SHIFT=1, DIM=1)
B = A
A = T + B
"#,
            1,
        );
        // B (the base) is overwritten before T's use: not transformable.
        assert_eq!(stats.converted, 0);
        assert_eq!(stats.kept, 1);
        assert_eq!(p.count_stmts(|s| matches!(s, Stmt::ShiftAssign { .. })), 1);
    }

    #[test]
    fn in_place_style_shift_blocks() {
        // A = CSHIFT(A,…) normalizes to TMP = CSHIFT(A); A = TMP. The use
        // assigns the base, so sharing storage is unsafe.
        let (p, stats) = run_src("PARAM N = 8\nREAL A(N,N)\nA = CSHIFT(A, SHIFT=1, DIM=1)\n", 1);
        assert_eq!(stats.converted, 0, "{}", pretty::program(&p));
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn dead_shift_still_converts() {
        let (p, stats) =
            run_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(B, SHIFT=1, DIM=1)\n", 1);
        // A's def has no uses in the program; conversion is safe and the
        // overlap shift remains as the only trace.
        assert_eq!(stats.converted, 1);
        assert_eq!(p.count_stmts(|s| matches!(s, Stmt::OverlapShift { .. })), 1);
    }

    #[test]
    fn jacobi_loop_body_transforms() {
        let (p, stats) = run_src(
            r#"
PARAM N = 8
REAL U(N,N), T(N,N)
DO 4 TIMES
T = CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2)
U = T
ENDDO
"#,
            1,
        );
        assert_eq!(stats.converted, 4);
        assert_eq!(stats.kept, 0);
        // Inside the loop: 4 overlap shifts + compute + copy-back.
        let mut overlaps = 0;
        p.for_each_stmt(&mut |s| {
            if matches!(s, Stmt::OverlapShift { .. }) {
                overlaps += 1;
            }
        });
        assert_eq!(overlaps, 4);
    }

    #[test]
    fn use_before_redefinition_in_loop_is_not_rewritten_across_back_edge() {
        // Loop body where T is used before being shifted into: the def only
        // reaches the use around the back edge — conservative bail.
        let (_, stats) = run_src(
            r#"
PARAM N = 8
REAL U(N,N), T(N,N)
DO 4 TIMES
U = T + U
T = CSHIFT(U,1,1)
ENDDO
"#,
            1,
        );
        assert_eq!(stats.converted, 0);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn cross_block_use_blocks_transformation() {
        let (_, stats) = run_src(
            r#"
PARAM N = 8
REAL U(N,N), T(N,N), S(N,N)
T = CSHIFT(U,1,1)
DO 2 TIMES
S = S + T
ENDDO
"#,
            1,
        );
        assert_eq!(stats.converted, 0);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn eoshift_transforms_with_kind_preserved() {
        let (p, stats) = run_src(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nA = EOSHIFT(B, SHIFT=1, DIM=1, BOUNDARY=3.0) + B\n",
            1,
        );
        assert_eq!(stats.converted, 1);
        let mut found = false;
        p.for_each_stmt(&mut |s| {
            if let Stmt::OverlapShift { kind, .. } = s {
                assert_eq!(*kind, hpf_ir::ShiftKind::EndOff(3.0));
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn redefined_temp_kills_alias() {
        // TMP reused across statements (Reuse policy): the second def must
        // not see stale offsets from the first.
        let (p, stats) = run_src(
            r#"
PARAM N = 8
REAL U(N,N), T(N,N)
T = U + CSHIFT(U,1,1)
T = T + CSHIFT(U,-1,1)
"#,
            1,
        );
        assert_eq!(stats.converted, 2);
        let mut seen = Vec::new();
        p.for_each_stmt(&mut |s| {
            if let Stmt::Compute { rhs, .. } = s {
                rhs.for_each_ref(&mut |r| seen.push((r.array, r.offsets.clone())));
            }
        });
        assert!(seen.iter().any(|(_, o)| o == &Offsets::new([1, 0])));
        assert!(seen.iter().any(|(_, o)| o == &Offsets::new([-1, 0])));
    }
}
