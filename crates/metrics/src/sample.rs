//! Per-step time series.
//!
//! The executor records one [`StepSample`] per plan step: where the
//! step's wall time went (phase sums read off the trace rings), how many
//! bytes moved, and how evenly the PEs were loaded. The series is a
//! bounded drop-newest buffer like the tracer rings — long runs keep the
//! first `capacity` steps and count the rest, so memory stays flat and
//! the retained prefix is still a faithful record of start-up behavior.

/// One plan step's measurements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepSample {
    /// Zero-based step index.
    pub step: u64,
    /// Wall nanoseconds for the whole step (driver view).
    pub wall_ns: u64,
    /// Wall ns in compute spans (interpreter sweeps, kernel executions,
    /// interior and boundary sweeps), summed over PEs.
    pub compute_ns: u64,
    /// Wall ns packing and unpacking halo buffers, summed over PEs.
    pub pack_ns: u64,
    /// Wall ns posting sends/receives, summed over PEs.
    pub send_ns: u64,
    /// Wall ns draining receives, summed over PEs.
    pub drain_ns: u64,
    /// Wall ns in boundary-strip sweeps alone (also included in
    /// `compute_ns`; split out because overlap quality is about this).
    pub boundary_ns: u64,
    /// Wall ns inside superstep envelopes, summed over PEs.
    pub superstep_ns: u64,
    /// Bytes sent between PEs during the step.
    pub bytes_moved: u64,
    /// Per-PE busy fraction: that PE's leaf-span wall time over the step
    /// wall time. Can exceed 1.0 only by timer jitter.
    pub busy: Vec<f64>,
    /// Load imbalance: max busy fraction over mean busy fraction; 1.0
    /// is perfectly balanced, 0.0 when no PE was busy.
    pub imbalance: f64,
}

impl StepSample {
    /// Imbalance from a busy vector: max/mean, 0.0 for empty/idle.
    pub fn imbalance_of(busy: &[f64]) -> f64 {
        let n = busy.len();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = busy.iter().sum();
        let max = busy.iter().cloned().fold(0.0f64, f64::max);
        if sum <= 0.0 {
            0.0
        } else {
            max / (sum / n as f64)
        }
    }
}

/// A bounded, drop-newest sequence of [`StepSample`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct StepSeries {
    samples: Vec<StepSample>,
    cap: usize,
    dropped: u64,
}

impl StepSeries {
    /// An empty series retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        StepSeries { samples: Vec::new(), cap, dropped: 0 }
    }

    /// Append a sample, or count it as dropped when the series is full.
    pub fn push(&mut self, s: StepSample) {
        if self.samples.len() < self.cap {
            self.samples.push(s);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained samples, in step order.
    pub fn samples(&self) -> &[StepSample] {
        &self.samples
    }

    /// Samples lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total step wall nanoseconds over the retained samples.
    pub fn total_wall_ns(&self) -> u64 {
        self.samples.iter().map(|s| s.wall_ns).sum()
    }

    /// Total bytes moved over the retained samples.
    pub fn total_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.bytes_moved).sum()
    }

    /// Mean per-PE busy fraction over the retained samples (empty when
    /// the series is).
    pub fn mean_busy(&self) -> Vec<f64> {
        let Some(first) = self.samples.first() else { return Vec::new() };
        let mut acc = vec![0.0; first.busy.len()];
        for s in &self.samples {
            for (a, b) in acc.iter_mut().zip(s.busy.iter()) {
                *a += b;
            }
        }
        let n = self.samples.len() as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }

    /// Mean load-imbalance ratio over the retained samples.
    pub fn mean_imbalance(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.imbalance).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(StepSample::imbalance_of(&[]), 0.0);
        assert_eq!(StepSample::imbalance_of(&[0.0, 0.0]), 0.0);
        assert_eq!(StepSample::imbalance_of(&[0.5, 0.5]), 1.0);
        let r = StepSample::imbalance_of(&[0.9, 0.3]);
        assert!((r - 1.5).abs() < 1e-12, "{r}");
    }

    #[test]
    fn series_drops_newest_past_capacity() {
        let mut s = StepSeries::new(2);
        for i in 0..5 {
            s.push(StepSample { step: i, wall_ns: 10, ..Default::default() });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.samples()[1].step, 1, "keeps the earliest samples");
        assert_eq!(s.total_wall_ns(), 20);
    }

    #[test]
    fn means_average_over_retained_samples() {
        let mut s = StepSeries::new(8);
        s.push(StepSample { busy: vec![1.0, 0.0], imbalance: 2.0, ..Default::default() });
        s.push(StepSample { busy: vec![0.0, 1.0], imbalance: 2.0, ..Default::default() });
        assert_eq!(s.mean_busy(), vec![0.5, 0.5]);
        assert_eq!(s.mean_imbalance(), 2.0);
        assert!(StepSeries::new(1).mean_busy().is_empty());
    }
}
