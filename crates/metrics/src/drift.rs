//! Cost-model drift attribution.
//!
//! The tuner prunes candidate configurations by modeled time, so the
//! model's per-component honesty matters more than its absolute scale:
//! the simulator's modeled SP-2 nanoseconds and the host's measured
//! nanoseconds differ by a large, roughly constant factor, but if one
//! component's factor diverges from the others', the model is mis-pricing
//! that component and the tuner's ranking can no longer be trusted.
//!
//! A [`DriftReport`] therefore joins, per component, the modeled time
//! (cost model applied to the exact `PeStats` counters) against the
//! measured wall time of the matching span kinds, and flags a component
//! when its modeled/measured ratio, *normalized by the median component
//! ratio*, leaves a configurable band. The absolute scale divides out
//! (and a single drifting component cannot drag the normalizer the way a
//! weighted mean would); what remains is relative mis-pricing.

use hpf_trace::json::Value;
use hpf_trace::{Align, TextTable};

/// One modeled-vs-measured pairing.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftComponent {
    /// Component name ("compute", "msg-latency", "bandwidth", ...).
    pub name: &'static str,
    /// Cost-model nanoseconds for this component, summed over PEs.
    pub modeled_ns: f64,
    /// Measured wall nanoseconds in the matching span kinds, summed
    /// over PEs.
    pub measured_ns: f64,
    /// True when both sides come from the model (the hidden-credit
    /// component pairs the counter-accumulated credit against the same
    /// credit read back off the drain spans). Such components are
    /// excluded from the median normalizer — their ratio sits at 1.0 by
    /// construction and would drag the center away from the true
    /// model-to-host scale — and are judged by raw ratio instead, where
    /// any departure from 1.0 means the two accounts disagree (e.g. ring
    /// overflow lost spans).
    pub model_only: bool,
}

impl DriftComponent {
    /// Modeled over measured; infinite when measured is zero but modeled
    /// is not, and 1.0 when both are zero (no evidence of drift).
    pub fn ratio(&self) -> f64 {
        if self.measured_ns > 0.0 {
            self.modeled_ns / self.measured_ns
        } else if self.modeled_ns > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// The drift report for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftReport {
    /// Per-component pairings, in a fixed presentation order.
    pub components: Vec<DriftComponent>,
    /// Total hidden-communication credit in modeled ns — reconciles
    /// exactly with the sum of `AggStats::hidden_comm_ns`.
    pub hidden_comm_ns: f64,
    /// The model's bottom line for the run — reconciles exactly with
    /// `CostModel::modeled_time_ns` on the run's aggregate counters.
    pub modeled_time_ns: f64,
    /// Total measured step wall nanoseconds (driver view).
    pub measured_wall_ns: u64,
    /// Acceptance band for the normalized ratio: `(low, high)`.
    pub band: (f64, f64),
}

impl DriftReport {
    /// The run-wide modeled/measured ratio (total over total); 1.0 when
    /// there is no measured evidence. Reported for context only — the
    /// flagging normalizer is [`DriftReport::center_ratio`], because this
    /// weighted total is itself dragged by whichever component drifts.
    pub fn overall_ratio(&self) -> f64 {
        let modeled: f64 = self.components.iter().map(|c| c.modeled_ns).sum();
        let measured: f64 = self.components.iter().map(|c| c.measured_ns).sum();
        if measured > 0.0 {
            modeled / measured
        } else {
            1.0
        }
    }

    /// The median ratio over components active on both sides — the
    /// robust estimate of the run's model-to-host scale factor. 1.0 when
    /// no component has evidence on both sides.
    pub fn center_ratio(&self) -> f64 {
        let mut ratios: Vec<f64> = self
            .components
            .iter()
            .filter(|c| !c.model_only && c.modeled_ns > 0.0 && c.measured_ns > 0.0)
            .map(DriftComponent::ratio)
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let mid = ratios.len() / 2;
        if ratios.len() % 2 == 1 {
            ratios[mid]
        } else {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        }
    }

    /// A component's ratio normalized by [`DriftReport::center_ratio`]:
    /// 1.0 means it drifts exactly as much as the typical component.
    /// Model-only components are already scale-free, so their raw ratio
    /// is returned unchanged.
    pub fn normalized_ratio(&self, c: &DriftComponent) -> f64 {
        if c.model_only {
            return c.ratio();
        }
        let center = self.center_ratio();
        if center > 0.0 && center.is_finite() {
            c.ratio() / center
        } else {
            c.ratio()
        }
    }

    /// Is this component's normalized ratio outside the band? A component
    /// with no measured spans is never flagged: each engine records a
    /// given cost under the span kinds its protocol actually exercises
    /// (the sequential engine never waits on messages, the threaded
    /// engines pack inside their post spans), so an empty measured side
    /// means *no evidence*, not infinite drift.
    pub fn is_flagged(&self, c: &DriftComponent) -> bool {
        if c.measured_ns <= 0.0 {
            return false;
        }
        let r = self.normalized_ratio(c);
        !(self.band.0..=self.band.1).contains(&r)
    }

    /// The components currently outside the band.
    pub fn flagged(&self) -> Vec<&DriftComponent> {
        self.components.iter().filter(|c| self.is_flagged(c)).collect()
    }

    /// Rendered drift table: one row per component with modeled ms,
    /// measured ms, raw and normalized ratios, and a `DRIFT` marker.
    pub fn render_table(&self) -> String {
        let mut t = TextTable::new(&[
            ("component", Align::Left),
            ("modeled-ms", Align::Right),
            ("measured-ms", Align::Right),
            ("ratio", Align::Right),
            ("rel", Align::Right),
            ("", Align::Left),
        ]);
        for c in &self.components {
            t.row([
                c.name.to_string(),
                format!("{:.3}", c.modeled_ns / 1e6),
                format!("{:.3}", c.measured_ns / 1e6),
                fmt_ratio(c.ratio()),
                fmt_ratio(self.normalized_ratio(c)),
                if self.is_flagged(c) { "DRIFT".into() } else { String::new() },
            ]);
        }
        t.line(format!(
            "(modeled {:.3} ms total, hidden credit {:.3} ms, measured wall {:.3} ms; \
             rel = component ratio / median ratio, band {:.2}..{:.2})",
            self.modeled_time_ns / 1e6,
            self.hidden_comm_ns / 1e6,
            self.measured_wall_ns as f64 / 1e6,
            self.band.0,
            self.band.1,
        ));
        t.render()
    }

    /// JSON form, renderable by `hpf_trace::json`.
    pub fn to_json(&self) -> Value {
        let comps = self
            .components
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("name".into(), Value::String(c.name.into())),
                    ("modeled_ns".into(), Value::Number(c.modeled_ns)),
                    ("measured_ns".into(), Value::Number(c.measured_ns)),
                    ("ratio".into(), Value::Number(finite(c.ratio()))),
                    ("normalized_ratio".into(), Value::Number(finite(self.normalized_ratio(c)))),
                    ("flagged".into(), Value::Bool(self.is_flagged(c))),
                ])
            })
            .collect();
        Value::Object(vec![
            ("components".into(), Value::Array(comps)),
            ("hidden_comm_ns".into(), Value::Number(self.hidden_comm_ns)),
            ("modeled_time_ns".into(), Value::Number(self.modeled_time_ns)),
            ("measured_wall_ns".into(), Value::Number(self.measured_wall_ns as f64)),
            (
                "band".into(),
                Value::Array(vec![Value::Number(self.band.0), Value::Number(self.band.1)]),
            ),
        ])
    }
}

/// JSON has no Infinity; clamp to a sentinel the parser round-trips.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.2}")
    } else {
        "inf".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(components: Vec<DriftComponent>) -> DriftReport {
        DriftReport {
            components,
            hidden_comm_ns: 0.0,
            modeled_time_ns: 0.0,
            measured_wall_ns: 1_000_000,
            band: (0.5, 2.0),
        }
    }

    #[test]
    fn uniform_scale_factor_is_not_drift() {
        // Model is 100x the wall everywhere: every normalized ratio is 1.
        let r = report(vec![
            DriftComponent {
                name: "compute",
                modeled_ns: 100_000.0,
                measured_ns: 1_000.0,
                model_only: false,
            },
            DriftComponent {
                name: "bandwidth",
                modeled_ns: 50_000.0,
                measured_ns: 500.0,
                model_only: false,
            },
        ]);
        assert!(r.flagged().is_empty(), "{:?}", r.flagged());
        assert!((r.overall_ratio() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn a_mispriced_component_is_flagged() {
        // Bandwidth drifts 10x beyond the run's overall factor.
        let r = report(vec![
            DriftComponent {
                name: "compute",
                modeled_ns: 100_000.0,
                measured_ns: 1_000.0,
                model_only: false,
            },
            DriftComponent {
                name: "compute2",
                modeled_ns: 100_000.0,
                measured_ns: 1_000.0,
                model_only: false,
            },
            DriftComponent {
                name: "bandwidth",
                modeled_ns: 1_000_000.0,
                measured_ns: 500.0,
                model_only: false,
            },
        ]);
        let flagged = r.flagged();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].name, "bandwidth");
        let table = r.render_table();
        assert!(table.contains("DRIFT"), "{table}");
        assert!(table.contains("bandwidth"), "{table}");
    }

    #[test]
    fn zero_modeled_with_real_wall_is_flagged() {
        // The model prices a component at zero that measurably costs time.
        let r = report(vec![
            DriftComponent {
                name: "compute",
                modeled_ns: 100_000.0,
                measured_ns: 1_000.0,
                model_only: false,
            },
            DriftComponent {
                name: "bandwidth",
                modeled_ns: 0.0,
                measured_ns: 1_000.0,
                model_only: false,
            },
        ]);
        assert_eq!(r.flagged().len(), 1);
        assert_eq!(r.flagged()[0].name, "bandwidth");
    }

    #[test]
    fn idle_components_are_never_flagged() {
        let r = report(vec![DriftComponent {
            name: "hidden",
            modeled_ns: 0.0,
            measured_ns: 0.0,
            model_only: false,
        }]);
        assert!(r.flagged().is_empty());
        assert_eq!(r.components[0].ratio(), 1.0);
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let r = report(vec![DriftComponent {
            name: "msg-latency",
            modeled_ns: 5.0,
            measured_ns: 0.0,
            model_only: false,
        }]);
        let j = r.to_json();
        let back = hpf_trace::json::parse(&j.render()).unwrap();
        assert_eq!(back.render(), j.render());
        // Modeled-but-unmeasured: no evidence, so not flagged.
        assert_eq!(
            back.get("components").and_then(|c| match c {
                Value::Array(a) => a[0].get("flagged").cloned(),
                _ => None,
            }),
            Some(Value::Bool(false))
        );
    }
}
