//! Single-writer metric registries.
//!
//! One [`Registry`] belongs to exactly one writer — a PE worker or the
//! driver — mirroring the `Tracer` discipline: no locks, no atomics, just
//! `&mut` exclusivity enforced by the borrow checker. The executors write
//! a PE's registry only from whichever thread currently owns that PE's
//! state (the same ownership the tracer rings rely on), and readers only
//! see a registry once stepping has returned. Names are interned on first
//! use; a registry holds a handful of metrics, so find-or-insert is a
//! short linear scan.

use crate::histogram::Histogram;
use hpf_trace::json::{escape, Value};

/// Monotonic counters, gauges, and log2 histograms for one writer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a monotonic counter, creating it at zero on first use.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c += v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, g)) => *g = v,
            None => self.gauges.push((name.to_string(), v)),
        }
    }

    /// Record one duration into a histogram, creating it on first use.
    pub fn hist_record(&mut self, name: &str, ns: u64) {
        self.hist_mut(name).record(ns);
    }

    /// The histogram with this name, created empty on first use.
    pub fn hist_mut(&mut self, name: &str) -> &mut Histogram {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return &mut self.hists[i].1;
        }
        self.hists.push((name.to_string(), Histogram::new()));
        &mut self.hists.last_mut().unwrap().1
    }

    /// Current counter value, if the counter exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, c)| c)
    }

    /// Current gauge value, if the gauge exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, g)| g)
    }

    /// The histogram with this name, if it exists.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// All counters, in creation order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// All gauges, in creation order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, g)| (n.as_str(), *g))
    }

    /// All histograms, in creation order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge, gauges keep the maximum (the conservative cross-PE view —
    /// for busy fractions and watermarks the worst writer is the one that
    /// matters).
    pub fn merge(&mut self, other: &Registry) {
        for (n, c) in other.counters() {
            self.counter_add(n, c);
        }
        for (n, g) in other.gauges() {
            let cur = self.gauge(n).unwrap_or(f64::NEG_INFINITY);
            self.gauge_set(n, cur.max(g));
        }
        for (n, h) in other.hists() {
            self.hist_mut(n).merge(h);
        }
    }

    /// JSON form: `{"counters":{...},"gauges":{...},"hists":{name:
    /// {"count":..,"sum_ns":..,"min_ns":..,"max_ns":..,"p50_ns":..,
    /// "p99_ns":..}}}`. Bucket arrays are omitted — the Prometheus
    /// exposition carries them; the snapshot keeps the digest.
    pub fn to_json(&self) -> Value {
        let counters =
            self.counters.iter().map(|(n, c)| (n.clone(), Value::Number(*c as f64))).collect();
        let gauges = self.gauges.iter().map(|(n, g)| (n.clone(), Value::Number(*g))).collect();
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::Number(h.count() as f64)),
                        ("sum_ns".into(), Value::Number(h.sum() as f64)),
                        ("min_ns".into(), Value::Number(h.min() as f64)),
                        ("max_ns".into(), Value::Number(h.max() as f64)),
                        ("p50_ns".into(), Value::Number(h.quantile(0.5) as f64)),
                        ("p99_ns".into(), Value::Number(h.quantile(0.99) as f64)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("hists".into(), Value::Object(hists)),
        ])
    }

    /// Prometheus text exposition for this registry, every sample tagged
    /// with the given `labels` (e.g. `pe="3"`). Metric names are
    /// sanitized to `[a-zA-Z0-9_]` and prefixed `hpf_`.
    pub fn to_prometheus(&self, out: &mut String, labels: &str) {
        for (n, c) in self.counters() {
            let name = prom_name(n);
            out.push_str(&format!("# TYPE {name}_total counter\n"));
            out.push_str(&format!("{name}_total{{{labels}}} {c}\n"));
        }
        for (n, g) in self.gauges() {
            let name = prom_name(n);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{{{labels}}} {g}\n"));
        }
        for (n, h) in self.hists() {
            let name = prom_name(n);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let le = crate::histogram::bucket_upper(i);
                out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_bucket{{{labels},le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum()));
            out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
        }
    }
}

/// Sanitize a metric name for Prometheus and prefix the namespace.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("hpf_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Quote a label value for Prometheus (reuses the JSON string escaper —
/// the grammars agree on `\\`, `\"`, and `\n`, the only specials here).
pub fn prom_label(key: &str, value: &str) -> String {
    format!("{key}=\"{}\"", escape(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_interned() {
        let mut r = Registry::new();
        r.counter_add("steps", 1);
        r.counter_add("steps", 2);
        r.counter_add("bytes", 10);
        assert_eq!(r.counter("steps"), Some(3));
        assert_eq!(r.counter("bytes"), Some(10));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.counters().count(), 2);
    }

    #[test]
    fn gauges_keep_the_latest_value() {
        let mut r = Registry::new();
        r.gauge_set("busy", 0.25);
        r.gauge_set("busy", 0.75);
        assert_eq!(r.gauge("busy"), Some(0.75));
    }

    #[test]
    fn merge_adds_counters_merges_hists_maxes_gauges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("n", 2);
        b.counter_add("n", 3);
        a.gauge_set("busy", 0.9);
        b.gauge_set("busy", 0.4);
        a.hist_record("lat", 100);
        b.hist_record("lat", 200);
        a.merge(&b);
        assert_eq!(a.counter("n"), Some(5));
        assert_eq!(a.gauge("busy"), Some(0.9));
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.hist("lat").unwrap().sum(), 300);
    }

    #[test]
    fn json_digest_carries_quantiles() {
        let mut r = Registry::new();
        r.hist_record("lat.ns", 64);
        let j = r.to_json();
        let h = j.get("hists").and_then(|h| h.get("lat.ns")).unwrap();
        assert_eq!(h.get("count"), Some(&Value::Number(1.0)));
        assert_eq!(h.get("max_ns"), Some(&Value::Number(64.0)));
        // Round-trips through the shared parser.
        let reparsed = hpf_trace::json::parse(&j.render()).unwrap();
        assert_eq!(reparsed.render(), j.render());
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_labelled() {
        let mut r = Registry::new();
        r.counter_add("steps", 4);
        r.hist_record("span compute", 5);
        r.hist_record("span compute", 900);
        let mut out = String::new();
        r.to_prometheus(&mut out, &prom_label("pe", "0"));
        assert!(out.contains("hpf_steps_total{pe=\"0\"} 4"), "{out}");
        assert!(out.contains("hpf_span_compute_bucket{pe=\"0\",le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("hpf_span_compute_sum{pe=\"0\"} 905"), "{out}");
        // Bucket counts are cumulative: the le="1023" bucket sees both.
        assert!(out.contains("le=\"1023\"} 2"), "{out}");
    }
}
