//! Log2-bucket latency histograms.
//!
//! Durations land in power-of-two buckets: bucket 0 holds exact zeros,
//! bucket `i` (i ≥ 1) holds `[2^(i-1), 2^i)` nanoseconds. Recording is a
//! leading-zeros computation plus two adds — cheap enough to sit on the
//! per-span metrics path — and quantiles come back as bucket upper
//! bounds, which is the usual trade: ≤ 2× relative error, zero
//! allocation, mergeable across PEs.

/// Number of buckets. The last bucket upper bound is `2^(BUCKETS-1)` ns
/// (≈ 2.4 hours), far beyond any span this simulator records.
pub const BUCKETS: usize = 44;

/// A fixed-size log2-bucket histogram of nanosecond durations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2 v) + 1`, clamped.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`0` for the zero bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)).saturating_sub(1).max(1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`, clamped to the
    /// exact observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_accumulate_and_summarize() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 100, 100, 4000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 4206);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 4000);
        assert!((h.mean() - 701.0).abs() < 1e-9);
        assert!(!h.is_empty());
    }

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucket upper bounds: within 2x of the true quantile, never past max.
        assert!((500..=1000).contains(&p50), "p50={p50}");
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3, 9, 1_000_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [0, 77] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
