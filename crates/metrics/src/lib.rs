//! Metrics and run-reporting for the HPF stencil simulator.
//!
//! This crate is the *data* layer of the observability stack: metric
//! primitives ([`Histogram`], [`Registry`]), the per-step time series
//! ([`StepSample`], [`StepSeries`]), the frozen export form
//! ([`MetricsSnapshot`] — JSON, Prometheus text, rendered tables), and
//! the cost-model drift report ([`DriftReport`]). It deliberately knows
//! nothing about machines, plans, or cost models: `hpf-exec` owns the
//! sampling (reading span deltas off the `hpf-trace` rings each step)
//! and the drift join (cost model × counters vs span walls), and hands
//! the plain numbers down to the types here. Like the tracer, every
//! writer-side structure is single-writer and lock-free: one registry
//! per PE, owned by whichever thread owns that PE's state, with bounded
//! drop-newest buffers so a long run can never grow without limit.
//!
//! The only dependency is `hpf-trace` — for the shared JSON module, the
//! shared table renderer, and the span vocabulary.

pub mod drift;
pub mod histogram;
pub mod registry;
pub mod sample;
pub mod snapshot;

pub use drift::{DriftComponent, DriftReport};
pub use histogram::Histogram;
pub use registry::Registry;
pub use sample::{StepSample, StepSeries};
pub use snapshot::MetricsSnapshot;

/// Metrics collection knobs, carried by `ExecConfig::metrics`.
///
/// `Copy` (like `TraceConfig`) so the exec configuration stays a plain
/// value type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricsConfig {
    /// Retained [`StepSample`]s before the series starts counting drops.
    pub step_capacity: usize,
    /// Lower edge of the drift acceptance band on the normalized
    /// modeled/measured ratio.
    pub band_low: f64,
    /// Upper edge of the drift acceptance band.
    pub band_high: f64,
}

impl MetricsConfig {
    /// Default step-series capacity.
    pub const DEFAULT_STEP_CAPACITY: usize = 4096;
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { step_capacity: Self::DEFAULT_STEP_CAPACITY, band_low: 0.5, band_high: 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane_and_copy() {
        let c = MetricsConfig::default();
        let d = c; // Copy
        assert_eq!(c, d);
        assert_eq!(c.step_capacity, 4096);
        assert!(c.band_low < 1.0 && c.band_high > 1.0);
    }
}
