//! Point-in-time export of a run's metrics.
//!
//! A [`MetricsSnapshot`] is everything the executor collected, frozen
//! for export: the per-PE registries, the driver registry, and the step
//! series. It renders three ways — a JSON document (through the shared
//! `hpf_trace::json` printer), Prometheus text exposition, and the
//! `TraceSummary`-style tables the `hpfsc --report` page is built from.

use crate::registry::{prom_label, Registry};
use crate::sample::StepSeries;
use hpf_trace::json::Value;
use hpf_trace::{Align, TextTable};

/// Frozen metrics for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// The execution-config label the run used (e.g.
    /// `threaded-overlap-bytecode`).
    pub config: String,
    /// Number of PEs.
    pub pes: usize,
    /// Plan steps executed while metrics were on.
    pub steps: u64,
    /// One registry per PE, in PE order.
    pub per_pe: Vec<Registry>,
    /// The driver's registry (step wall histogram, byte counters).
    pub driver: Registry,
    /// The per-step time series.
    pub series: StepSeries,
}

impl MetricsSnapshot {
    /// All PE registries folded into one (counters add, histograms
    /// merge) — the machine-wide view of the per-kind latency data.
    pub fn merged_pe_registry(&self) -> Registry {
        let mut all = Registry::new();
        for r in &self.per_pe {
            all.merge(r);
        }
        all
    }

    /// JSON document (`hpf-metrics/v1`).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String("hpf-metrics/v1".into())),
            ("config".into(), Value::String(self.config.clone())),
            ("pes".into(), Value::Number(self.pes as f64)),
            ("steps".into(), Value::Number(self.steps as f64)),
            ("driver".into(), self.driver.to_json()),
            ("per_pe".into(), Value::Array(self.per_pe.iter().map(Registry::to_json).collect())),
            ("series".into(), series_json(&self.series)),
        ])
    }

    /// Prometheus text exposition: driver samples labelled
    /// `pe="driver"`, PE samples labelled by index, plus series-level
    /// gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.driver.to_prometheus(&mut out, &prom_label("pe", "driver"));
        for (pe, r) in self.per_pe.iter().enumerate() {
            r.to_prometheus(&mut out, &prom_label("pe", &pe.to_string()));
        }
        out.push_str("# TYPE hpf_load_imbalance gauge\n");
        out.push_str(&format!("hpf_load_imbalance {}\n", self.series.mean_imbalance()));
        out.push_str("# TYPE hpf_steps_sampled gauge\n");
        out.push_str(&format!("hpf_steps_sampled {}\n", self.series.len()));
        out
    }

    /// Per-PE utilization table: busy fraction, span wall time, span
    /// count, drops.
    pub fn render_utilization(&self) -> String {
        let busy = self.series.mean_busy();
        let mut t = TextTable::new(&[
            ("pe", Align::Left),
            ("busy%", Align::Right),
            ("spans", Align::Right),
            ("span-ms", Align::Right),
            ("dropped", Align::Right),
        ]);
        for (pe, r) in self.per_pe.iter().enumerate() {
            let spans: u64 = r.hists().map(|(_, h)| h.count()).sum();
            let wall: u64 = r.hists().map(|(_, h)| h.sum()).sum();
            t.row([
                format!("PE {pe}"),
                format!("{:.1}", busy.get(pe).copied().unwrap_or(0.0) * 100.0),
                spans.to_string(),
                format!("{:.3}", wall as f64 / 1e6),
                r.counter("spans_dropped").unwrap_or(0).to_string(),
            ]);
        }
        t.line(format!(
            "(mean over {} sampled steps; imbalance max/mean = {:.2})",
            self.series.len(),
            self.series.mean_imbalance()
        ));
        t.render()
    }

    /// Histogram summary table over the merged PE registries: count,
    /// p50/p99, max per span kind, in microseconds.
    pub fn render_histograms(&self) -> String {
        let merged = self.merged_pe_registry();
        let mut t = TextTable::new(&[
            ("histogram", Align::Left),
            ("count", Align::Right),
            ("p50-us", Align::Right),
            ("p99-us", Align::Right),
            ("max-us", Align::Right),
        ]);
        for (name, h) in merged.hists() {
            if h.is_empty() {
                continue;
            }
            t.row([
                name.to_string(),
                h.count().to_string(),
                format!("{:.1}", h.quantile(0.5) as f64 / 1e3),
                format!("{:.1}", h.quantile(0.99) as f64 / 1e3),
                format!("{:.1}", h.max() as f64 / 1e3),
            ]);
        }
        if t.is_empty() {
            t.line("(no spans recorded)");
        }
        t.render()
    }
}

fn series_json(s: &StepSeries) -> Value {
    let samples = s
        .samples()
        .iter()
        .map(|x| {
            Value::Object(vec![
                ("step".into(), Value::Number(x.step as f64)),
                ("wall_ns".into(), Value::Number(x.wall_ns as f64)),
                ("compute_ns".into(), Value::Number(x.compute_ns as f64)),
                ("pack_ns".into(), Value::Number(x.pack_ns as f64)),
                ("send_ns".into(), Value::Number(x.send_ns as f64)),
                ("drain_ns".into(), Value::Number(x.drain_ns as f64)),
                ("boundary_ns".into(), Value::Number(x.boundary_ns as f64)),
                ("superstep_ns".into(), Value::Number(x.superstep_ns as f64)),
                ("bytes_moved".into(), Value::Number(x.bytes_moved as f64)),
                ("imbalance".into(), Value::Number(x.imbalance)),
                ("busy".into(), Value::Array(x.busy.iter().map(|&b| Value::Number(b)).collect())),
            ])
        })
        .collect();
    Value::Object(vec![
        ("dropped".into(), Value::Number(s.dropped() as f64)),
        ("samples".into(), Value::Array(samples)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::StepSample;

    fn snapshot() -> MetricsSnapshot {
        let mut pe0 = Registry::new();
        pe0.hist_record("compute", 1000);
        pe0.hist_record("pack", 200);
        let mut pe1 = Registry::new();
        pe1.hist_record("compute", 3000);
        pe1.counter_add("spans_dropped", 2);
        let mut driver = Registry::new();
        driver.hist_record("step_wall", 5000);
        driver.counter_add("steps", 1);
        let mut series = StepSeries::new(16);
        series.push(StepSample {
            step: 0,
            wall_ns: 5000,
            compute_ns: 4000,
            bytes_moved: 64,
            busy: vec![0.24, 0.6],
            imbalance: StepSample::imbalance_of(&[0.24, 0.6]),
            ..Default::default()
        });
        MetricsSnapshot {
            config: "threaded-bytecode".into(),
            pes: 2,
            steps: 1,
            per_pe: vec![pe0, pe1],
            driver,
            series,
        }
    }

    #[test]
    fn json_round_trips_and_carries_the_schema() {
        let j = snapshot().to_json();
        assert_eq!(j.get("schema"), Some(&Value::String("hpf-metrics/v1".into())));
        assert_eq!(j.get("pes"), Some(&Value::Number(2.0)));
        let back = hpf_trace::json::parse(&j.render()).unwrap();
        assert_eq!(back.render(), j.render());
    }

    #[test]
    fn prometheus_labels_driver_and_pes() {
        let p = snapshot().to_prometheus();
        assert!(p.contains("hpf_steps_total{pe=\"driver\"} 1"), "{p}");
        assert!(p.contains("hpf_compute_count{pe=\"0\"} 1"), "{p}");
        assert!(p.contains("hpf_compute_count{pe=\"1\"} 1"), "{p}");
        assert!(p.contains("hpf_load_imbalance"), "{p}");
    }

    #[test]
    fn tables_cover_every_pe_and_merged_hists() {
        let s = snapshot();
        let util = s.render_utilization();
        assert!(util.contains("PE 0") && util.contains("PE 1"), "{util}");
        assert!(util.contains("imbalance"), "{util}");
        let hist = s.render_histograms();
        assert!(hist.contains("compute"), "{hist}");
        assert!(hist.contains("pack"), "{hist}");
        // Merged: both PEs' compute spans in one row.
        assert_eq!(s.merged_pe_registry().hist("compute").unwrap().count(), 2);
    }
}
