//! The hand-translated Fortran77+MPI starting point ("original").
//!
//! The paper's §5 experiment begins from "a naive translation of the
//! Problem 9 test case into Fortran77+MPI", which a careful human would
//! write with reused temporaries and cache-friendly loop order but without
//! any of the stencil optimizations — it still performs every shift's
//! intraprocessor copy and keeps one loop nest per statement group. That is
//! precisely [`hpf_passes::CompileOptions::original`].

use hpf_frontend::Checked;
use hpf_passes::{compile, CompileOptions, Compiled};

/// Options of the hand translation.
pub fn hand_mpi_options() -> CompileOptions {
    CompileOptions::original()
}

/// Compile the way the paper's "original" MPI version was written.
pub fn compile_hand_mpi(checked: &Checked) -> Compiled {
    compile(checked, hand_mpi_options())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;

    #[test]
    fn reuses_temporaries_unlike_naive() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
T = U + CSHIFT(U,1,1)
T = T + CSHIFT(U,-1,1)
T = T + CSHIFT(U,1,2)
"#;
        let checked = compile_source(src).unwrap();
        let hand = compile_hand_mpi(&checked);
        let naive = crate::naive::compile_naive(&checked);
        assert_eq!(hand.stats.normalize.temps, 1);
        assert_eq!(naive.stats.normalize.temps, 3);
        // Both still move all the data with full shifts.
        assert_eq!(hand.stats.offset.converted, 0);
        assert_eq!(hand.stats.comm_ops, 3);
    }
}
