#![warn(missing_docs)]

//! # hpf-baselines — the compilers the paper compares against
//!
//! * [`naive`] — an xlhpf-class naive HPF translation (paper Figure 4 and
//!   §4's "most Fortran90 compilers"): one fresh temporary per `CSHIFT`,
//!   full intra+interprocessor data movement per shift, one loop nest per
//!   array statement. This is the baseline whose single-statement 9-point
//!   stencil exhausts memory in Figure 11.
//! * [`hand_mpi`] — the hand-translated Fortran77+MPI starting point of the
//!   staged experiment (Figure 17's "original"): temporaries reused, sane
//!   loop order, but no stencil optimizations.
//! * [`cm2`] — a CM-2-convolution-compiler-style *pattern matcher* (§6):
//!   recognizes only single-statement sum-of-coefficient×shift stencils and
//!   compiles those well; everything else is rejected. Demonstrates the
//!   robustness gap the paper's normalization-based strategy closes.

pub mod cm2;
pub mod hand_mpi;
pub mod naive;

pub use cm2::{recognize, RecognizeError, StencilPattern};
