//! The xlhpf-class naive translation.
//!
//! Exactly the scheme the paper attributes to contemporary HPF compilers
//! (Figure 4): every `CSHIFT` intrinsic is hoisted into its own freshly
//! allocated temporary with *full* shift data movement (interprocessor
//! messages plus the intraprocessor copy), and every array statement is
//! scalarized into its own subgrid loop nest. No offset arrays, no
//! reordering, no unioning, no memory optimizations.

use hpf_frontend::Checked;
use hpf_passes::{compile, CompileOptions, Compiled, TempPolicy};

/// Options of the naive translation.
pub fn naive_options() -> CompileOptions {
    CompileOptions {
        temp_policy: TempPolicy::FreshPerShift,
        offset_arrays: false,
        partition: false,
        unioning: false,
        fuse: false,
        scalar_replacement: false,
        unroll_factor: 1,
        permute: true,
        fortran_order: false,
        halo: 1,
        check_invariants: cfg!(debug_assertions),
    }
}

/// Compile a program the way an xlhpf-class compiler would.
pub fn compile_naive(checked: &Checked) -> Compiled {
    compile(checked, naive_options())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;

    const NINE_POINT_CSHIFT: &str = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1=1, C2=2, C3=3, C4=4, C5=5, C6=6, C7=7, C8=8, C9=9
DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2) + C2 * CSHIFT(SRC,-1,1) &
    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2) + C4 * CSHIFT(SRC,-1,2) &
    + C5 * SRC + C6 * CSHIFT(SRC,+1,2) &
    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2) + C8 * CSHIFT(SRC,+1,1) &
    + C9 * CSHIFT(SRC,+1,1)
"#;

    #[test]
    fn nine_point_allocates_eleven_temps() {
        // 11 CSHIFT intrinsics in this variant -> 11 temporaries, plus SRC
        // and DST: 13 arrays, the memory blow-up of Figure 11.
        let c = compile_naive(&compile_source(NINE_POINT_CSHIFT).unwrap());
        assert_eq!(c.stats.normalize.temps, 11);
        assert_eq!(c.stats.arrays_allocated, 13);
        assert_eq!(c.stats.comm_ops, 11);
        assert_eq!(c.stats.offset.converted, 0);
        assert_eq!(c.stats.unioning.after, 0);
    }

    #[test]
    fn one_nest_per_statement() {
        let src = "PARAM N = 8\nREAL A(N,N), B(N,N), C(N,N)\nA = B\nC = A\nB = C\n";
        let c = compile_naive(&compile_source(src).unwrap());
        assert_eq!(c.stats.nests, 3, "no fusion in the naive translation");
    }
}
