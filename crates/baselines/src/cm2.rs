//! A CM-2 convolution-compiler-style stencil pattern matcher.
//!
//! The paper (§6) describes the CM-2 stencil compiler's restrictions: it
//! accepted only *single-statement* stencils written with the `CSHIFT`
//! intrinsic, in exactly the form "a sum of terms, each of which is a
//! coefficient multiplying a shift expression — no variations possible",
//! with the stencil isolated in its own subroutine. This module implements
//! that recognizer: when a program matches, it is compiled with the full
//! optimization pipeline (standing in for the hand-optimized microcode);
//! when it does not — multi-statement forms, array syntax, `EOSHIFT`,
//! extra arithmetic — recognition fails, which is the robustness gap the
//! paper's strategy closes.

use hpf_frontend::{CExpr, CStmt, Checked};
use hpf_ir::{ArrayId, BinOp, Offsets, ScalarId, Section};
use hpf_passes::{compile, CompileOptions, Compiled};
use std::fmt;

/// Why recognition failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecognizeError {
    /// More than one executable statement.
    MultiStatement,
    /// The statement assigns a section, or operands use array syntax.
    ArraySyntax,
    /// A term is not `coefficient × shift-chain(SRC)`.
    NotSumOfProducts,
    /// Terms reference more than one source array.
    MixedSources,
    /// `EOSHIFT` is not in the accepted pattern.
    EndOffShift,
    /// Program contains loops or is empty.
    UnsupportedShape,
    /// `WHERE`-masked assignments are outside the pattern.
    Masked,
}

impl fmt::Display for RecognizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecognizeError::MultiStatement => "multi-statement stencils are not recognized",
            RecognizeError::ArraySyntax => "array-syntax stencils are not recognized",
            RecognizeError::NotSumOfProducts => {
                "statement is not a sum of coefficient*CSHIFT terms"
            }
            RecognizeError::MixedSources => "terms reference more than one source array",
            RecognizeError::EndOffShift => "EOSHIFT is not recognized",
            RecognizeError::UnsupportedShape => "program shape not supported",
            RecognizeError::Masked => "masked (WHERE) assignments are not recognized",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RecognizeError {}

/// A stencil tap coefficient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Coeff {
    /// Implicit 1.0.
    One,
    /// Literal.
    Const(f64),
    /// Scalar symbol.
    Scalar(ScalarId),
}

/// A recognized convolution stencil: destination, source, and taps.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilPattern {
    /// Assigned array.
    pub dst: ArrayId,
    /// The single source array.
    pub src: ArrayId,
    /// `(offset vector, coefficient)` per term.
    pub taps: Vec<(Offsets, Coeff)>,
}

/// Run the pattern matcher.
pub fn recognize(checked: &Checked) -> Result<StencilPattern, RecognizeError> {
    let stmt = match checked.stmts.as_slice() {
        [s] => s,
        [] => return Err(RecognizeError::UnsupportedShape),
        _ => return Err(RecognizeError::MultiStatement),
    };
    let (lhs, section, rhs) = match stmt {
        CStmt::Assign { mask: Some(_), .. } => return Err(RecognizeError::Masked),
        CStmt::Assign { lhs, section, rhs, mask: None, .. } => (lhs, section, rhs),
        CStmt::Do { .. } => return Err(RecognizeError::UnsupportedShape),
    };
    let full = Section::full(&checked.symbols.array(*lhs).shape);
    if *section != full {
        return Err(RecognizeError::ArraySyntax);
    }
    let rank = checked.symbols.array(*lhs).rank();
    let mut taps = Vec::new();
    let mut src: Option<ArrayId> = None;
    collect_terms(checked, rhs, rank, &mut src, &mut taps)?;
    Ok(StencilPattern { dst: *lhs, src: src.ok_or(RecognizeError::NotSumOfProducts)?, taps })
}

fn collect_terms(
    checked: &Checked,
    e: &CExpr,
    rank: usize,
    src: &mut Option<ArrayId>,
    taps: &mut Vec<(Offsets, Coeff)>,
) -> Result<(), RecognizeError> {
    match e {
        CExpr::Bin(BinOp::Add, a, b) => {
            collect_terms(checked, a, rank, src, taps)?;
            collect_terms(checked, b, rank, src, taps)
        }
        other => {
            let (coeff, offsets, array) = match_term(checked, other, rank)?;
            match src {
                None => *src = Some(array),
                Some(s) if *s == array => {}
                Some(_) => return Err(RecognizeError::MixedSources),
            }
            taps.push((offsets, coeff));
            Ok(())
        }
    }
}

/// Match `coeff * chain`, `chain * coeff`, or a bare chain.
fn match_term(
    checked: &Checked,
    e: &CExpr,
    rank: usize,
) -> Result<(Coeff, Offsets, ArrayId), RecognizeError> {
    match e {
        CExpr::Bin(BinOp::Mul, a, b) => {
            if let Some(c) = as_coeff(a) {
                let (off, arr) = match_chain(checked, b, rank)?;
                Ok((c, off, arr))
            } else if let Some(c) = as_coeff(b) {
                let (off, arr) = match_chain(checked, a, rank)?;
                Ok((c, off, arr))
            } else {
                Err(RecognizeError::NotSumOfProducts)
            }
        }
        other => {
            let (off, arr) = match_chain(checked, other, rank)?;
            Ok((Coeff::One, off, arr))
        }
    }
}

fn as_coeff(e: &CExpr) -> Option<Coeff> {
    match e {
        CExpr::Const(v) => Some(Coeff::Const(*v)),
        CExpr::Scalar(s) => Some(Coeff::Scalar(*s)),
        _ => None,
    }
}

/// Match a (possibly nested) `CSHIFT` chain over a whole source array.
fn match_chain(
    checked: &Checked,
    e: &CExpr,
    rank: usize,
) -> Result<(Offsets, ArrayId), RecognizeError> {
    match e {
        CExpr::Sec { array, section, .. } => {
            let full = Section::full(&checked.symbols.array(*array).shape);
            if *section != full {
                return Err(RecognizeError::ArraySyntax);
            }
            Ok((Offsets::zero(rank), *array))
        }
        CExpr::Shift { arg, shift, dim, kind, .. } => {
            if !matches!(kind, hpf_ir::ShiftKind::Circular) {
                return Err(RecognizeError::EndOffShift);
            }
            let (off, arr) = match_chain(checked, arg, rank)?;
            Ok((off.compose(&Offsets::unit(rank, *dim, *shift)), arr))
        }
        _ => Err(RecognizeError::NotSumOfProducts),
    }
}

/// Compile through the pattern matcher: recognized stencils get the fully
/// optimized translation (the stand-in for the CM-2's hand-tuned microcode);
/// anything else is rejected.
pub fn compile_cm2(checked: &Checked) -> Result<Compiled, RecognizeError> {
    recognize(checked)?;
    Ok(compile(checked, CompileOptions::full()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;

    const NINE_POINT_CSHIFT: &str = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1=1, C2=2, C3=3, C4=4, C5=5, C6=6, C7=7, C8=8, C9=9
DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2) + C2 * CSHIFT(SRC,-1,1) &
    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2) + C4 * CSHIFT(SRC,-1,2) &
    + C5 * SRC + C6 * CSHIFT(SRC,+1,2) &
    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2) + C8 * CSHIFT(SRC,+1,1) &
    + C9 * CSHIFT(CSHIFT(SRC,+1,1),+1,2)
"#;

    #[test]
    fn recognizes_the_canonical_nine_point() {
        let p = recognize(&compile_source(NINE_POINT_CSHIFT).unwrap()).unwrap();
        assert_eq!(p.taps.len(), 9);
        // The corner tap composed two shifts.
        assert!(p.taps.iter().any(|(o, _)| o.0 == vec![-1, -1]));
        assert!(p.taps.iter().any(|(o, c)| o.is_zero() && matches!(c, Coeff::Scalar(_))));
        assert!(compile_cm2(&compile_source(NINE_POINT_CSHIFT).unwrap()).is_ok());
    }

    #[test]
    fn rejects_multi_statement_problem9() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
T = U + RIP
"#;
        assert_eq!(
            recognize(&compile_source(src).unwrap()).unwrap_err(),
            RecognizeError::MultiStatement
        );
    }

    #[test]
    fn rejects_array_syntax() {
        let src = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,2:N-1) + SRC(2:N-1,2:N-1)
"#;
        assert_eq!(
            recognize(&compile_source(src).unwrap()).unwrap_err(),
            RecognizeError::ArraySyntax
        );
    }

    #[test]
    fn rejects_variations_of_the_pattern() {
        // Subtraction between terms: "no variations were possible".
        let src = "PARAM N = 8\nREAL S(N,N), D(N,N)\nD = S - CSHIFT(S,1,1)\n";
        assert!(recognize(&compile_source(src).unwrap()).is_err());
        // Coefficient that is itself an expression.
        let src2 = "PARAM N = 8\nREAL S(N,N), D(N,N)\nREAL C\nD = (C + 1) * CSHIFT(S,1,1) + S\n";
        assert_eq!(
            recognize(&compile_source(src2).unwrap()).unwrap_err(),
            RecognizeError::NotSumOfProducts
        );
    }

    #[test]
    fn rejects_mixed_sources_and_eoshift() {
        let src = "PARAM N = 8\nREAL S(N,N), R(N,N), D(N,N)\nD = CSHIFT(S,1,1) + CSHIFT(R,1,1)\n";
        assert_eq!(
            recognize(&compile_source(src).unwrap()).unwrap_err(),
            RecognizeError::MixedSources
        );
        let src2 = "PARAM N = 8\nREAL S(N,N), D(N,N)\nD = EOSHIFT(S,1,1) + S\n";
        assert_eq!(
            recognize(&compile_source(src2).unwrap()).unwrap_err(),
            RecognizeError::EndOffShift
        );
    }

    #[test]
    fn rejects_loops() {
        let src = "PARAM N = 8\nREAL S(N,N), D(N,N)\nDO 2 TIMES\nD = CSHIFT(S,1,1)\nENDDO\n";
        assert_eq!(
            recognize(&compile_source(src).unwrap()).unwrap_err(),
            RecognizeError::UnsupportedShape
        );
    }

    #[test]
    fn coefficient_on_either_side() {
        let src = "PARAM N = 8\nREAL S(N,N), D(N,N)\nD = CSHIFT(S,1,1) * 0.5 + 2 * S\n";
        let p = recognize(&compile_source(src).unwrap()).unwrap();
        assert_eq!(p.taps.len(), 2);
        assert!(p.taps.iter().any(|(_, c)| *c == Coeff::Const(0.5)));
        assert!(p.taps.iter().any(|(_, c)| *c == Coeff::Const(2.0)));
    }
}
