//! Abstract syntax tree produced by the parser.

use crate::error::Span;

/// An integer expression usable in declarations and section bounds:
/// a literal, a `PARAM`, or `param ± literal` chains (e.g. `N-1`).
#[derive(Clone, Debug, PartialEq)]
pub enum IntExpr {
    /// Integer literal.
    Lit(i64),
    /// Reference to a `PARAM`.
    Param(String),
    /// Sum of two integer expressions.
    Add(Box<IntExpr>, Box<IntExpr>),
    /// Difference of two integer expressions.
    Sub(Box<IntExpr>, Box<IntExpr>),
}

/// One dimension of an array section: a `lo:hi` range or `:` (whole dim).
#[derive(Clone, Debug, PartialEq)]
pub enum AstRange {
    /// Explicit bounds `lo:hi`.
    Range(IntExpr, IntExpr),
    /// `:` — the whole dimension.
    Full,
    /// A single index `i` (degenerate range `i:i`).
    Index(IntExpr),
}

/// Array declaration before semantic analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct AstArrayDecl {
    /// Array name (uppercased).
    pub name: String,
    /// Per-dimension extents.
    pub dims: Vec<IntExpr>,
    /// Declaration location.
    pub span: Span,
}

/// Per-dimension distribution spec in a `DISTRIBUTE` directive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AstDist {
    /// `BLOCK`
    Block,
    /// `*`
    Collapsed,
}

/// Expression grammar of the source language.
#[derive(Clone, Debug, PartialEq)]
pub enum AstExpr {
    /// Numeric literal.
    Num(f64),
    /// Identifier, optionally with a section: scalar ref, whole-array ref,
    /// or array-section ref (resolved during semantic analysis).
    Ident {
        /// Name (uppercased).
        name: String,
        /// Optional section subscript.
        section: Option<Vec<AstRange>>,
        /// Location.
        span: Span,
    },
    /// `CSHIFT(arg, SHIFT=s, DIM=d)` or `EOSHIFT(…, BOUNDARY=b)`.
    Shift {
        /// Shifted expression (often a whole array, possibly nested shifts).
        arg: Box<AstExpr>,
        /// Shift amount (sign included).
        shift: i64,
        /// Dimension, 1-based as written.
        dim: usize,
        /// `None` for CSHIFT, `Some(boundary)` for EOSHIFT.
        boundary: Option<f64>,
        /// Location.
        span: Span,
    },
    /// Binary arithmetic.
    Bin(hpf_ir::BinOp, Box<AstExpr>, Box<AstExpr>),
    /// Unary negation.
    Neg(Box<AstExpr>),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum AstStmt {
    /// `[WHERE (a op b)] LHS[(section)] = expr`
    Assign {
        /// Assigned identifier (array expected).
        lhs: String,
        /// Optional LHS section.
        section: Option<Vec<AstRange>>,
        /// Right-hand side.
        rhs: AstExpr,
        /// Optional `WHERE` mask.
        mask: Option<Box<(hpf_ir::expr::CmpOp, AstExpr, AstExpr)>>,
        /// Location.
        span: Span,
    },
    /// `DO k TIMES … ENDDO`
    Do {
        /// Iteration count.
        iters: IntExpr,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Location.
        span: Span,
    },
}

/// A parsed program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Ast {
    /// Program name from the `PROGRAM` line.
    pub name: String,
    /// `PARAM` constants in declaration order.
    pub params: Vec<(String, i64)>,
    /// Array declarations.
    pub arrays: Vec<AstArrayDecl>,
    /// Scalar declarations `(name, initial value)`.
    pub scalars: Vec<(String, Option<f64>)>,
    /// `DISTRIBUTE` directives `(array, dists, span)`.
    pub distributes: Vec<(String, Vec<AstDist>, Span)>,
    /// Executable statements.
    pub stmts: Vec<AstStmt>,
}

impl IntExpr {
    /// Evaluate against the parameter environment.
    pub fn eval(&self, params: &[(String, i64)]) -> Result<i64, String> {
        match self {
            IntExpr::Lit(v) => Ok(*v),
            IntExpr::Param(name) => params
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("unknown parameter '{name}'")),
            IntExpr::Add(a, b) => Ok(a.eval(params)? + b.eval(params)?),
            IntExpr::Sub(a, b) => Ok(a.eval(params)? - b.eval(params)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_expr_eval() {
        let params = vec![("N".to_string(), 16)];
        let e = IntExpr::Sub(Box::new(IntExpr::Param("N".into())), Box::new(IntExpr::Lit(1)));
        assert_eq!(e.eval(&params).unwrap(), 15);
        let e2 = IntExpr::Add(Box::new(e), Box::new(IntExpr::Lit(2)));
        assert_eq!(e2.eval(&params).unwrap(), 17);
        assert!(IntExpr::Param("M".into()).eval(&params).is_err());
    }
}
