//! Recursive-descent parser for the mini-HPF dialect.

use crate::ast::*;
use crate::error::{FrontError, Span};
use crate::lexer::{Tok, Token};
use hpf_ir::expr::CmpOp;
use hpf_ir::BinOp;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Parse a token stream into an [`Ast`].
pub fn parse(toks: &[Token]) -> Result<Ast, FrontError> {
    Parser { toks, pos: 0 }.program()
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> &Tok {
        let t = &self.toks[self.pos].tok;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), FrontError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> FrontError {
        FrontError::new(self.span(), msg)
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn end_of_line(&mut self) -> Result<(), FrontError> {
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => Err(self.err(format!("trailing tokens on line: {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, FrontError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ----- program structure ------------------------------------------------

    fn program(&mut self) -> Result<Ast, FrontError> {
        let mut ast = Ast::default();
        self.skip_newlines();
        if self.eat_kw("PROGRAM") {
            ast.name = self.ident("program name")?;
            self.end_of_line()?;
        }
        loop {
            self.skip_newlines();
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) if kw == "END" => {
                    self.bump();
                    break;
                }
                Tok::Ident(kw) if kw == "PARAM" || kw == "PARAMETER" => {
                    self.bump();
                    self.param_decl(&mut ast)?;
                }
                Tok::Ident(kw) if kw == "REAL" => {
                    self.bump();
                    self.real_decl(&mut ast)?;
                }
                Tok::HpfDirective => {
                    self.bump();
                    self.directive(&mut ast)?;
                }
                Tok::Ident(kw) if kw == "DISTRIBUTE" => {
                    self.bump();
                    self.distribute_body(&mut ast)?;
                }
                _ => {
                    let s = self.stmt()?;
                    ast.stmts.push(s);
                }
            }
        }
        Ok(ast)
    }

    fn param_decl(&mut self, ast: &mut Ast) -> Result<(), FrontError> {
        loop {
            let name = self.ident("parameter name")?;
            self.expect(&Tok::Eq, "'='")?;
            let neg = self.eat(&Tok::Minus);
            let v = match self.peek().clone() {
                Tok::Int(v) => {
                    self.bump();
                    if neg {
                        -v
                    } else {
                        v
                    }
                }
                other => return Err(self.err(format!("expected integer, found {other:?}"))),
            };
            ast.params.push((name, v));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.end_of_line()
    }

    fn real_decl(&mut self, ast: &mut Ast) -> Result<(), FrontError> {
        loop {
            let span = self.span();
            let name = self.ident("declaration name")?;
            if self.eat(&Tok::LParen) {
                let mut dims = Vec::new();
                loop {
                    dims.push(self.int_expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "')'")?;
                ast.arrays.push(AstArrayDecl { name, dims, span });
            } else if self.eat(&Tok::Eq) {
                let v = self.number()?;
                ast.scalars.push((name, Some(v)));
            } else {
                ast.scalars.push((name, None));
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.end_of_line()
    }

    fn directive(&mut self, ast: &mut Ast) -> Result<(), FrontError> {
        if self.eat_kw("DISTRIBUTE") {
            self.distribute_body(ast)
        } else {
            // Unknown directives are ignored to end of line, like real
            // compilers treat unrecognized `!HPF$` lines.
            while !matches!(self.peek(), Tok::Newline | Tok::Eof) {
                self.bump();
            }
            self.end_of_line()
        }
    }

    fn distribute_body(&mut self, ast: &mut Ast) -> Result<(), FrontError> {
        loop {
            let span = self.span();
            let name = self.ident("array name")?;
            self.expect(&Tok::LParen, "'('")?;
            let mut dists = Vec::new();
            loop {
                if self.eat(&Tok::Star) {
                    dists.push(AstDist::Collapsed);
                } else if self.eat_kw("BLOCK") {
                    dists.push(AstDist::Block);
                } else {
                    return Err(self.err("expected BLOCK or '*' in DISTRIBUTE"));
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "')'")?;
            ast.distributes.push((name, dists, span));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.end_of_line()
    }

    // ----- statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<AstStmt, FrontError> {
        let span = self.span();
        if self.eat_kw("WHERE") {
            // Single-statement masked assignment: WHERE (cond) lhs = rhs
            self.expect(&Tok::LParen, "'(' after WHERE")?;
            let a = self.expr()?;
            let op = match self.bump().clone() {
                Tok::Gt => CmpOp::Gt,
                Tok::Lt => CmpOp::Lt,
                Tok::Ge => CmpOp::Ge,
                Tok::Le => CmpOp::Le,
                Tok::EqEq => CmpOp::Eq,
                Tok::Ne => CmpOp::Ne,
                other => {
                    return Err(self.err(format!(
                        "expected comparison operator in WHERE mask, found {other:?}"
                    )))
                }
            };
            let b = self.expr()?;
            self.expect(&Tok::RParen, "')' after WHERE mask")?;
            let inner = self.stmt()?;
            return match inner {
                AstStmt::Assign { lhs, section, rhs, mask: None, span } => Ok(AstStmt::Assign {
                    lhs,
                    section,
                    rhs,
                    mask: Some(Box::new((op, a, b))),
                    span,
                }),
                _ => Err(FrontError::new(span, "WHERE must guard a single assignment")),
            };
        }
        if self.eat_kw("DO") {
            let iters = self.int_expr()?;
            if !self.eat_kw("TIMES") {
                return Err(self.err("expected TIMES after DO count"));
            }
            self.end_of_line()?;
            let mut body = Vec::new();
            loop {
                self.skip_newlines();
                if self.eat_kw("ENDDO") {
                    self.end_of_line()?;
                    break;
                }
                if matches!(self.peek(), Tok::Eof) {
                    return Err(self.err("unterminated DO: expected ENDDO"));
                }
                body.push(self.stmt()?);
            }
            return Ok(AstStmt::Do { iters, body, span });
        }
        // Assignment.
        let lhs = self.ident("assignment target")?;
        let section = if self.eat(&Tok::LParen) {
            let s = self.section_list()?;
            self.expect(&Tok::RParen, "')'")?;
            Some(s)
        } else {
            None
        };
        self.expect(&Tok::Eq, "'='")?;
        let rhs = self.expr()?;
        self.end_of_line()?;
        Ok(AstStmt::Assign { lhs, section, rhs, mask: None, span })
    }

    fn section_list(&mut self) -> Result<Vec<AstRange>, FrontError> {
        let mut out = Vec::new();
        loop {
            out.push(self.range()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn range(&mut self) -> Result<AstRange, FrontError> {
        if self.eat(&Tok::Colon) {
            return Ok(AstRange::Full);
        }
        let lo = self.int_expr()?;
        if self.eat(&Tok::Colon) {
            let hi = self.int_expr()?;
            Ok(AstRange::Range(lo, hi))
        } else {
            Ok(AstRange::Index(lo))
        }
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, FrontError> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.eat(&Tok::Plus) {
                BinOp::Add
            } else if self.eat(&Tok::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let rhs = self.term()?;
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<AstExpr, FrontError> {
        let mut lhs = self.factor()?;
        loop {
            let op = if self.eat(&Tok::Star) {
                BinOp::Mul
            } else if self.eat(&Tok::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let rhs = self.factor()?;
            lhs = AstExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<AstExpr, FrontError> {
        let span = self.span();
        if self.eat(&Tok::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.factor()?)));
        }
        if self.eat(&Tok::Plus) {
            return self.factor();
        }
        match self.peek().clone() {
            Tok::Float(v) => {
                self.bump();
                Ok(AstExpr::Num(v))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(AstExpr::Num(v as f64))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "CSHIFT" || name == "EOSHIFT" => {
                let endoff = name == "EOSHIFT";
                self.bump();
                self.shift_intrinsic(endoff, span)
            }
            Tok::Ident(name) => {
                self.bump();
                let section = if self.eat(&Tok::LParen) {
                    let s = self.section_list()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Some(s)
                } else {
                    None
                };
                Ok(AstExpr::Ident { name, section, span })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    /// Parse `(arg, SHIFT=s, DIM=d [, BOUNDARY=b])` — keyword or positional.
    fn shift_intrinsic(&mut self, endoff: bool, span: Span) -> Result<AstExpr, FrontError> {
        self.expect(&Tok::LParen, "'(' after shift intrinsic")?;
        let arg = self.expr()?;
        self.expect(&Tok::Comma, "',' after shift argument")?;
        let mut shift: Option<i64> = None;
        let mut dim: Option<usize> = None;
        let mut boundary: Option<f64> = None;
        let mut positional = 0usize;
        loop {
            if self.eat_kw("SHIFT") {
                self.expect(&Tok::Eq, "'=' after SHIFT")?;
                shift = Some(self.signed_int()?);
            } else if self.eat_kw("DIM") {
                self.expect(&Tok::Eq, "'=' after DIM")?;
                let d = self.signed_int()?;
                if d < 1 {
                    return Err(self.err("DIM must be >= 1"));
                }
                dim = Some(d as usize);
            } else if self.eat_kw("BOUNDARY") {
                self.expect(&Tok::Eq, "'=' after BOUNDARY")?;
                boundary = Some(self.signed_number()?);
            } else {
                // positional: first SHIFT, then DIM, then BOUNDARY
                match positional {
                    0 => shift = Some(self.signed_int()?),
                    1 => {
                        let d = self.signed_int()?;
                        if d < 1 {
                            return Err(self.err("DIM must be >= 1"));
                        }
                        dim = Some(d as usize);
                    }
                    2 if endoff => boundary = Some(self.signed_number()?),
                    _ => return Err(self.err("too many shift-intrinsic arguments")),
                }
                positional += 1;
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let shift = shift.ok_or_else(|| FrontError::new(span, "missing SHIFT amount"))?;
        let dim = dim.unwrap_or(1);
        let boundary = if endoff { Some(boundary.unwrap_or(0.0)) } else { None };
        Ok(AstExpr::Shift { arg: Box::new(arg), shift, dim, boundary, span })
    }

    fn signed_int(&mut self) -> Result<i64, FrontError> {
        let neg = if self.eat(&Tok::Minus) {
            true
        } else {
            self.eat(&Tok::Plus);
            false
        };
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn signed_number(&mut self) -> Result<f64, FrontError> {
        let neg = if self.eat(&Tok::Minus) {
            true
        } else {
            self.eat(&Tok::Plus);
            false
        };
        let v = self.number()?;
        Ok(if neg { -v } else { v })
    }

    fn number(&mut self) -> Result<f64, FrontError> {
        match self.peek().clone() {
            Tok::Float(v) => {
                self.bump();
                Ok(v)
            }
            Tok::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn int_expr(&mut self) -> Result<IntExpr, FrontError> {
        let mut lhs = self.int_primary()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.int_primary()?;
                lhs = IntExpr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.int_primary()?;
                lhs = IntExpr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn int_primary(&mut self) -> Result<IntExpr, FrontError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(IntExpr::Lit(v))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(IntExpr::Param(name))
            }
            other => Err(self.err(format!("expected integer expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn program_header_and_end() {
        let ast = parse_src("PROGRAM foo\nEND");
        assert_eq!(ast.name, "FOO");
        assert!(ast.stmts.is_empty());
    }

    #[test]
    fn param_and_decls() {
        let ast = parse_src("PARAM N = 8\nREAL U(N,N), T(N,N)\nREAL C1 = 0.5, C2\n");
        assert_eq!(ast.params, vec![("N".to_string(), 8)]);
        assert_eq!(ast.arrays.len(), 2);
        assert_eq!(ast.arrays[1].name, "T");
        assert_eq!(ast.scalars, vec![("C1".to_string(), Some(0.5)), ("C2".to_string(), None)]);
    }

    #[test]
    fn distribute_directive() {
        let ast = parse_src("REAL U(4,4)\n!HPF$ DISTRIBUTE U(BLOCK,*)\n");
        assert_eq!(ast.distributes.len(), 1);
        assert_eq!(ast.distributes[0].1, vec![AstDist::Block, AstDist::Collapsed]);
    }

    #[test]
    fn unknown_directive_ignored() {
        let ast = parse_src("!HPF$ ALIGN A WITH B\nREAL U(4)\n");
        assert!(ast.distributes.is_empty());
        assert_eq!(ast.arrays.len(), 1);
    }

    #[test]
    fn cshift_keyword_args() {
        let ast = parse_src("RIP = CSHIFT(U,SHIFT=+1,DIM=1)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { lhs, rhs, .. } => {
                assert_eq!(lhs, "RIP");
                match rhs {
                    AstExpr::Shift { shift, dim, boundary, .. } => {
                        assert_eq!(*shift, 1);
                        assert_eq!(*dim, 1);
                        assert!(boundary.is_none());
                    }
                    other => panic!("expected shift, got {other:?}"),
                }
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn cshift_positional_args_and_nesting() {
        let ast = parse_src("T = CSHIFT(CSHIFT(U,-1,1),+1,2)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { rhs: AstExpr::Shift { arg, shift, dim, .. }, .. } => {
                assert_eq!((*shift, *dim), (1, 2));
                assert!(matches!(**arg, AstExpr::Shift { shift: -1, dim: 1, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eoshift_with_boundary() {
        let ast = parse_src("T = EOSHIFT(U, SHIFT=-1, DIM=2, BOUNDARY=-3.5)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { rhs: AstExpr::Shift { boundary, .. }, .. } => {
                assert_eq!(*boundary, Some(-3.5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eoshift_default_boundary_zero() {
        let ast = parse_src("T = EOSHIFT(U, SHIFT=1, DIM=1)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { rhs: AstExpr::Shift { boundary, .. }, .. } => {
                assert_eq!(*boundary, Some(0.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sections_on_both_sides() {
        let ast = parse_src("DST(2:N-1,2:N-1) = SRC(1:N-2,2:N-1) + SRC(3:N,2:N-1)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { section: Some(sec), rhs, .. } => {
                assert_eq!(sec.len(), 2);
                assert!(matches!(rhs, AstExpr::Bin(BinOp::Add, ..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_and_index_ranges() {
        let ast = parse_src("A(:,3) = B(:,4)\n");
        match &ast.stmts[0] {
            AstStmt::Assign { section: Some(sec), .. } => {
                assert_eq!(sec[0], AstRange::Full);
                assert_eq!(sec[1], AstRange::Index(IntExpr::Lit(3)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn do_times_loop() {
        let ast = parse_src("DO 10 TIMES\nT = U\nU = T\nENDDO\n");
        match &ast.stmts[0] {
            AstStmt::Do { iters, body, .. } => {
                assert_eq!(*iters, IntExpr::Lit(10));
                assert_eq!(body.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_do_loops() {
        let ast = parse_src("DO 2 TIMES\nDO 3 TIMES\nT = U\nENDDO\nENDDO\n");
        match &ast.stmts[0] {
            AstStmt::Do { body, .. } => assert!(matches!(body[0], AstStmt::Do { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unterminated_do_errors() {
        let toks = lex("DO 2 TIMES\nT = U\n").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn operator_precedence() {
        let ast = parse_src("T = C1 * U + C2 * V\n");
        match &ast.stmts[0] {
            AstStmt::Assign { rhs: AstExpr::Bin(BinOp::Add, l, r), .. } => {
                assert!(matches!(**l, AstExpr::Bin(BinOp::Mul, ..)));
                assert!(matches!(**r, AstExpr::Bin(BinOp::Mul, ..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_parens() {
        let ast = parse_src("T = -(U + V) * W\n");
        match &ast.stmts[0] {
            AstStmt::Assign { rhs: AstExpr::Bin(BinOp::Mul, l, _), .. } => {
                assert!(matches!(**l, AstExpr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_shift_amount_errors() {
        let toks = lex("T = CSHIFT(U, DIM=1)\n").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let toks = lex("T = U V\n").unwrap();
        assert!(parse(&toks).is_err());
    }
}
