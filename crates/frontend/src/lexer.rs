//! Lexer for the mini-HPF dialect.
//!
//! Handles Fortran-style `&` continuation lines (both trailing `&` and a
//! leading `&` on the continuation), `!` comments, the `!HPF$` directive
//! prefix, case-insensitive keywords, and numeric literals with exponents.

use crate::error::{FrontError, Span};

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (uppercased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `/=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of a logical line (continuations folded away).
    Newline,
    /// Start of an `!HPF$` directive (rest of line lexes normally).
    HpfDirective,
    /// End of input.
    Eof,
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Location of the first character.
    pub span: Span,
}

/// Lex a source string into tokens. Logical lines end with [`Tok::Newline`];
/// a trailing `&` (or a leading `&` on the next line) joins lines.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    let mut out = Vec::new();
    let mut pending_continuation = false;
    for (lineno, raw_line) in src.lines().enumerate() {
        let line_no = lineno as u32 + 1;
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        // A leading '&' marks the continuation of the previous line.
        while i < bytes.len() && bytes[i].is_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == '&' {
            i += 1;
        }
        let mut line_tokens: Vec<Token> = Vec::new();
        let mut continued = false;
        while i < bytes.len() {
            let c = bytes[i];
            let span = Span::new(line_no, i as u32 + 1);
            match c {
                ' ' | '\t' | '\r' => {
                    i += 1;
                }
                '!' => {
                    // Directive or comment.
                    let rest: String = bytes[i..].iter().collect();
                    if rest.to_ascii_uppercase().starts_with("!HPF$") {
                        line_tokens.push(Token { tok: Tok::HpfDirective, span });
                        i += 5;
                    } else {
                        break; // comment to end of line
                    }
                }
                '&' => {
                    continued = true;
                    i += 1;
                    // Anything after '&' other than whitespace/comment is an error.
                    while i < bytes.len() && bytes[i].is_whitespace() {
                        i += 1;
                    }
                    if i < bytes.len() && bytes[i] != '!' {
                        return Err(FrontError::new(
                            Span::new(line_no, i as u32 + 1),
                            "unexpected text after continuation '&'",
                        ));
                    }
                    i = bytes.len();
                }
                '(' => {
                    line_tokens.push(Token { tok: Tok::LParen, span });
                    i += 1;
                }
                ')' => {
                    line_tokens.push(Token { tok: Tok::RParen, span });
                    i += 1;
                }
                ',' => {
                    line_tokens.push(Token { tok: Tok::Comma, span });
                    i += 1;
                }
                ':' => {
                    line_tokens.push(Token { tok: Tok::Colon, span });
                    i += 1;
                }
                '=' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        line_tokens.push(Token { tok: Tok::EqEq, span });
                        i += 2;
                    } else {
                        line_tokens.push(Token { tok: Tok::Eq, span });
                        i += 1;
                    }
                }
                '>' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        line_tokens.push(Token { tok: Tok::Ge, span });
                        i += 2;
                    } else {
                        line_tokens.push(Token { tok: Tok::Gt, span });
                        i += 1;
                    }
                }
                '<' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        line_tokens.push(Token { tok: Tok::Le, span });
                        i += 2;
                    } else {
                        line_tokens.push(Token { tok: Tok::Lt, span });
                        i += 1;
                    }
                }
                '+' => {
                    line_tokens.push(Token { tok: Tok::Plus, span });
                    i += 1;
                }
                '-' => {
                    line_tokens.push(Token { tok: Tok::Minus, span });
                    i += 1;
                }
                '*' => {
                    line_tokens.push(Token { tok: Tok::Star, span });
                    i += 1;
                }
                '/' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == '=' {
                        line_tokens.push(Token { tok: Tok::Ne, span });
                        i += 2;
                    } else {
                        line_tokens.push(Token { tok: Tok::Slash, span });
                        i += 1;
                    }
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let start = i;
                    let mut is_float = false;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < bytes.len() && bytes[i] == '.' {
                        // Guard against `1:2` style ranges — '.' always means float here.
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                        let save = i;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                            i += 1;
                        }
                        if i < bytes.len() && bytes[i].is_ascii_digit() {
                            is_float = true;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        } else {
                            i = save; // 'E' begins an identifier, not an exponent
                        }
                    }
                    let text: String = bytes[start..i].iter().collect();
                    if text == "." {
                        return Err(FrontError::new(span, "stray '.'"));
                    }
                    let tok = if is_float {
                        Tok::Float(text.parse().map_err(|_| {
                            FrontError::new(span, format!("bad float literal '{text}'"))
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| {
                            FrontError::new(span, format!("bad integer literal '{text}'"))
                        })?)
                    };
                    line_tokens.push(Token { tok, span });
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                    {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    line_tokens.push(Token { tok: Tok::Ident(text.to_ascii_uppercase()), span });
                }
                other => {
                    return Err(FrontError::new(span, format!("unexpected character '{other}'")));
                }
            }
        }
        if line_tokens.is_empty() && !continued {
            // Blank/comment-only line: emit nothing, but if the previous
            // line ended with '&' keep waiting for its continuation.
            continue;
        }
        let _ = pending_continuation; // tracked via Newline suppression below
        out.extend(line_tokens);
        if continued {
            pending_continuation = true;
        } else {
            pending_continuation = false;
            out.push(Token {
                tok: Tok::Newline,
                span: Span::new(line_no, raw_line.len() as u32 + 1),
            });
        }
    }
    out.push(Token { tok: Tok::Eof, span: Span::new(src.lines().count() as u32 + 1, 1) });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        let toks = kinds("A = B + 1");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("A".into()),
                Tok::Eq,
                Tok::Ident("B".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn case_insensitive_idents() {
        assert_eq!(kinds("cshift")[0], Tok::Ident("CSHIFT".into()));
    }

    #[test]
    fn floats_and_exponents() {
        assert_eq!(kinds("0.25")[0], Tok::Float(0.25));
        assert_eq!(kinds("1e-3")[0], Tok::Float(1e-3));
        assert_eq!(kinds("2.5E2")[0], Tok::Float(250.0));
        assert_eq!(kinds("7")[0], Tok::Int(7));
    }

    #[test]
    fn exponent_vs_ident() {
        // `1E` followed by non-digit is int then ident.
        let toks = kinds("1E");
        assert_eq!(toks[0], Tok::Int(1));
        assert_eq!(toks[1], Tok::Ident("E".into()));
    }

    #[test]
    fn continuation_trailing_amp() {
        let toks = kinds("A = B &\n  + C");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("A".into()),
                Tok::Eq,
                Tok::Ident("B".into()),
                Tok::Plus,
                Tok::Ident("C".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn continuation_leading_amp() {
        let toks = kinds("A = B &\n& + C");
        assert!(toks.contains(&Tok::Plus));
        assert_eq!(toks.iter().filter(|t| **t == Tok::Newline).count(), 1);
    }

    #[test]
    fn comments_ignored() {
        let toks = kinds("A = 1 ! set A\n! full comment line\nB = 2");
        assert_eq!(toks.iter().filter(|t| **t == Tok::Newline).count(), 2);
    }

    #[test]
    fn hpf_directive() {
        let toks = kinds("!HPF$ DISTRIBUTE U(BLOCK,BLOCK)");
        assert_eq!(toks[0], Tok::HpfDirective);
        assert_eq!(toks[1], Tok::Ident("DISTRIBUTE".into()));
        assert_eq!(toks[2], Tok::Ident("U".into()));
    }

    #[test]
    fn directive_lowercase() {
        let toks = kinds("!hpf$ distribute u(block,*)");
        assert_eq!(toks[0], Tok::HpfDirective);
        assert!(toks.contains(&Tok::Star));
    }

    #[test]
    fn bad_character_errors() {
        let err = lex("A = #").unwrap_err();
        assert!(err.message.contains('#'));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn text_after_continuation_errors() {
        assert!(lex("A = B & C").is_err());
        assert!(lex("A = B & ! fine").is_ok());
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(
            kinds("A > B >= C < D <= E == F /= G"),
            vec![
                Tok::Ident("A".into()),
                Tok::Gt,
                Tok::Ident("B".into()),
                Tok::Ge,
                Tok::Ident("C".into()),
                Tok::Lt,
                Tok::Ident("D".into()),
                Tok::Le,
                Tok::Ident("E".into()),
                Tok::EqEq,
                Tok::Ident("F".into()),
                Tok::Ne,
                Tok::Ident("G".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn slash_vs_not_equal() {
        assert_eq!(kinds("A / B")[1], Tok::Slash);
        assert_eq!(kinds("A /= B")[1], Tok::Ne);
        assert_eq!(kinds("A = B")[1], Tok::Eq);
        assert_eq!(kinds("A == B")[1], Tok::EqEq);
    }

    #[test]
    fn section_tokens() {
        let toks = kinds("A(2:N-1,:)");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Int(2),
                Tok::Colon,
                Tok::Ident("N".into()),
                Tok::Minus,
                Tok::Int(1),
                Tok::Comma,
                Tok::Colon,
                Tok::RParen,
                Tok::Newline,
                Tok::Eof
            ]
        );
    }
}
