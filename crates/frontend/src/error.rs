//! Frontend error reporting.
//!
//! [`Span`] itself lives in `hpf-ir` (so IR-level diagnostics can carry
//! source positions without depending on the frontend) and is re-exported
//! here for backwards compatibility.

use std::fmt;

pub use hpf_ir::Span;

/// Any error produced while lexing, parsing or checking a source program.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl FrontError {
    /// Construct an error at a location.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        FrontError { span, message: message.into() }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for FrontError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FrontError::new(Span::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
