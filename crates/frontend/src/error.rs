//! Source spans and frontend error reporting.

use std::fmt;

/// A half-open source location: line and column (both 1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced while lexing, parsing or checking a source program.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl FrontError {
    /// Construct an error at a location.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        FrontError { span, message: message.into() }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for FrontError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FrontError::new(Span::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
