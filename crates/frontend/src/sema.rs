//! Semantic analysis: symbol resolution, shape/conformance checking, and
//! evaluation of `PARAM`-dependent extents and bounds.
//!
//! The result, [`Checked`], is the fully resolved program that both the
//! normalization pass (producing the paper's normal form) and the reference
//! interpreter (the correctness oracle) consume.

use crate::ast::*;
use crate::error::{FrontError, Span};
use hpf_ir::{
    ArrayDecl, ArrayId, BinOp, DimDist, Distribution, ScalarDecl, ScalarId, Section, Shape,
    ShiftKind, SymbolTable,
};

/// A checked expression. Array operands carry explicit concrete sections;
/// shift arguments are restricted to whole-array expressions (checked here),
/// matching the forms the paper's normalization handles.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// Literal.
    Const(f64),
    /// Scalar coefficient.
    Scalar(ScalarId),
    /// Array operand restricted to `section`.
    Sec {
        /// Referenced array.
        array: ArrayId,
        /// Concrete 1-based section.
        section: Section,
        /// Source position of the reference.
        span: Span,
    },
    /// `CSHIFT`/`EOSHIFT` of a whole-array expression.
    Shift {
        /// Shifted operand (whole-array shaped).
        arg: Box<CExpr>,
        /// Shift amount.
        shift: i64,
        /// Dimension, 0-based.
        dim: usize,
        /// Circular or end-off.
        kind: ShiftKind,
        /// Source position of the intrinsic call.
        span: Span,
    },
    /// Binary arithmetic.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Negation.
    Neg(Box<CExpr>),
}

impl CExpr {
    /// Visit every node of the expression tree.
    pub fn walk(&self, f: &mut impl FnMut(&CExpr)) {
        f(self);
        match self {
            CExpr::Shift { arg, .. } => arg.walk(f),
            CExpr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            CExpr::Neg(a) => a.walk(f),
            _ => {}
        }
    }

    /// Number of shift intrinsics in the expression.
    pub fn shift_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |e| {
            if matches!(e, CExpr::Shift { .. }) {
                n += 1;
            }
        });
        n
    }
}

/// A checked statement.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// `[WHERE (a op b)] lhs(section) = rhs`
    Assign {
        /// Assigned array.
        lhs: ArrayId,
        /// Concrete LHS section (the iteration space).
        section: Section,
        /// Right-hand side.
        rhs: CExpr,
        /// Optional `WHERE` mask; both sides conform to the section.
        mask: Option<Box<(hpf_ir::expr::CmpOp, CExpr, CExpr)>>,
        /// Source position of the statement.
        span: Span,
    },
    /// `DO iters TIMES … ENDDO`
    Do {
        /// Number of iterations.
        iters: usize,
        /// Body.
        body: Vec<CStmt>,
    },
}

/// A semantically checked program.
#[derive(Clone, Debug, PartialEq)]
pub struct Checked {
    /// Program name.
    pub name: String,
    /// Resolved symbols with concrete shapes and distributions.
    pub symbols: SymbolTable,
    /// Checked statements.
    pub stmts: Vec<CStmt>,
}

/// Inferred shape of an expression: `None` = scalar (broadcasts), `Some` =
/// per-dimension extents.
type InferredShape = Option<Vec<i64>>;

struct Checker {
    symbols: SymbolTable,
    params: Vec<(String, i64)>,
}

/// Run semantic analysis on a parsed program.
pub fn check(ast: &Ast) -> Result<Checked, FrontError> {
    let mut symbols = SymbolTable::new();
    // Arrays: evaluate extents, default distribution BLOCK in all dims.
    for a in &ast.arrays {
        let mut extents = Vec::new();
        for d in &a.dims {
            let v = d.eval(&ast.params).map_err(|m| FrontError::new(a.span, m))?;
            if v < 1 {
                return Err(FrontError::new(
                    a.span,
                    format!("array {} has non-positive extent {v}", a.name),
                ));
            }
            extents.push(v as usize);
        }
        let rank = extents.len();
        symbols.add_array(ArrayDecl::user(
            a.name.clone(),
            Shape::new(extents),
            Distribution::block(rank),
        ));
    }
    // DISTRIBUTE directives override the default.
    for (name, dists, span) in &ast.distributes {
        let id = symbols.lookup_array(name).ok_or_else(|| {
            FrontError::new(*span, format!("DISTRIBUTE of undeclared array {name}"))
        })?;
        let rank = symbols.array(id).rank();
        if dists.len() != rank {
            return Err(FrontError::new(
                *span,
                format!("DISTRIBUTE rank {} does not match array {name} rank {rank}", dists.len()),
            ));
        }
        let dist = Distribution(
            dists
                .iter()
                .map(|d| match d {
                    AstDist::Block => DimDist::Block,
                    AstDist::Collapsed => DimDist::Collapsed,
                })
                .collect(),
        );
        // SymbolTable has no mutation API for decls; rebuild is overkill, so
        // we go through a setter implemented here via unsafe-free rebuild.
        set_distribution(&mut symbols, id, dist);
    }
    for (name, value) in &ast.scalars {
        symbols.add_scalar(ScalarDecl { name: name.clone(), value: value.unwrap_or(0.0) });
    }
    let checker = Checker { symbols, params: ast.params.clone() };
    let stmts = checker.block(&ast.stmts)?;
    Ok(Checked { name: ast.name.clone(), symbols: checker.symbols, stmts })
}

/// Replace the distribution of one array (rebuilds the table in place).
fn set_distribution(symbols: &mut SymbolTable, id: ArrayId, dist: Distribution) {
    let mut rebuilt = SymbolTable::new();
    for aid in symbols.array_ids() {
        let mut decl = symbols.array(aid).clone();
        if aid == id {
            decl.dist = dist.clone();
        }
        rebuilt.add_array(decl);
    }
    for sid in symbols.scalar_ids() {
        rebuilt.add_scalar(symbols.scalar(sid).clone());
    }
    *symbols = rebuilt;
}

impl Checker {
    fn block(&self, stmts: &[AstStmt]) -> Result<Vec<CStmt>, FrontError> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&self, s: &AstStmt) -> Result<CStmt, FrontError> {
        match s {
            AstStmt::Assign { lhs, section, rhs, mask, span } => {
                let id = self.symbols.lookup_array(lhs).ok_or_else(|| {
                    FrontError::new(*span, format!("assignment to undeclared array {lhs}"))
                })?;
                let decl = self.symbols.array(id);
                let sec = self.resolve_section(section.as_deref(), &decl.shape, *span)?;
                if !sec.within(&decl.shape) {
                    return Err(FrontError::new(
                        *span,
                        format!("section {sec:?} outside bounds of {lhs} {:?}", decl.shape),
                    ));
                }
                let (rhs, shape) = self.expr(rhs)?;
                if let Some(extents) = shape {
                    let want: Vec<i64> = (0..sec.rank()).map(|d| sec.extent(d)).collect();
                    if extents != want {
                        return Err(FrontError::new(
                            *span,
                            format!(
                                "shape mismatch: LHS section extents {want:?} vs RHS {extents:?}"
                            ),
                        ));
                    }
                }
                let cmask = match mask {
                    None => None,
                    Some(m) => {
                        let (op, a, b) = &**m;
                        let (ca, sa) = self.expr(a)?;
                        let (cb, sb) = self.expr(b)?;
                        let want: Vec<i64> = (0..sec.rank()).map(|d| sec.extent(d)).collect();
                        for (side, shape) in [("left", &sa), ("right", &sb)] {
                            if let Some(extents) = shape {
                                if *extents != want {
                                    return Err(FrontError::new(
                                        *span,
                                        format!(
                                            "WHERE mask {side} side extents {extents:?} do not                                              conform to the assignment {want:?}"
                                        ),
                                    ));
                                }
                            }
                        }
                        Some(Box::new((*op, ca, cb)))
                    }
                };
                Ok(CStmt::Assign { lhs: id, section: sec, rhs, mask: cmask, span: *span })
            }
            AstStmt::Do { iters, body, span } => {
                let n = iters.eval(&self.params).map_err(|m| FrontError::new(*span, m))?;
                if n < 0 {
                    return Err(FrontError::new(*span, "negative DO count"));
                }
                Ok(CStmt::Do { iters: n as usize, body: self.block(body)? })
            }
        }
    }

    fn resolve_section(
        &self,
        section: Option<&[AstRange]>,
        shape: &Shape,
        span: Span,
    ) -> Result<Section, FrontError> {
        match section {
            None => Ok(Section::full(shape)),
            Some(ranges) => {
                if ranges.len() != shape.rank() {
                    return Err(FrontError::new(
                        span,
                        format!(
                            "section rank {} does not match array rank {}",
                            ranges.len(),
                            shape.rank()
                        ),
                    ));
                }
                let mut bounds = Vec::new();
                for (d, r) in ranges.iter().enumerate() {
                    let b = match r {
                        AstRange::Full => (1, shape.extent(d) as i64),
                        AstRange::Index(i) => {
                            let v = i.eval(&self.params).map_err(|m| FrontError::new(span, m))?;
                            (v, v)
                        }
                        AstRange::Range(lo, hi) => {
                            let lo = lo.eval(&self.params).map_err(|m| FrontError::new(span, m))?;
                            let hi = hi.eval(&self.params).map_err(|m| FrontError::new(span, m))?;
                            (lo, hi)
                        }
                    };
                    bounds.push(b);
                }
                Ok(Section::new(bounds))
            }
        }
    }

    fn expr(&self, e: &AstExpr) -> Result<(CExpr, InferredShape), FrontError> {
        match e {
            AstExpr::Num(v) => Ok((CExpr::Const(*v), None)),
            AstExpr::Neg(a) => {
                let (ce, sh) = self.expr(a)?;
                Ok((CExpr::Neg(Box::new(ce)), sh))
            }
            AstExpr::Bin(op, a, b) => {
                let (ca, sa) = self.expr(a)?;
                let (cb, sb) = self.expr(b)?;
                let shape = match (sa, sb) {
                    (None, s) | (s, None) => s,
                    (Some(x), Some(y)) => {
                        if x != y {
                            return Err(FrontError::new(
                                Span::default(),
                                format!("non-conformant operands: extents {x:?} vs {y:?}"),
                            ));
                        }
                        Some(x)
                    }
                };
                Ok((CExpr::Bin(*op, Box::new(ca), Box::new(cb)), shape))
            }
            AstExpr::Ident { name, section, span } => {
                if let Some(id) = self.symbols.lookup_array(name) {
                    let decl = self.symbols.array(id);
                    let sec = self.resolve_section(section.as_deref(), &decl.shape, *span)?;
                    if !sec.within(&decl.shape) {
                        return Err(FrontError::new(
                            *span,
                            format!("section {sec:?} outside bounds of {name} {:?}", decl.shape),
                        ));
                    }
                    let extents: Vec<i64> = (0..sec.rank()).map(|d| sec.extent(d)).collect();
                    Ok((CExpr::Sec { array: id, section: sec, span: *span }, Some(extents)))
                } else if let Some(id) = self.symbols.lookup_scalar(name) {
                    if section.is_some() {
                        return Err(FrontError::new(*span, format!("scalar {name} subscripted")));
                    }
                    Ok((CExpr::Scalar(id), None))
                } else {
                    Err(FrontError::new(*span, format!("undeclared identifier {name}")))
                }
            }
            AstExpr::Shift { arg, shift, dim, boundary, span } => {
                let (carg, shape) = self.expr(arg)?;
                let extents = shape.ok_or_else(|| {
                    FrontError::new(*span, "shift intrinsic applied to a scalar expression")
                })?;
                // The normal form applies shifts to whole arrays only
                // (paper §2.1); reject sectioned operands inside shifts.
                let mut sectioned = false;
                carg.walk(&mut |e| {
                    if let CExpr::Sec { array, section, .. } = e {
                        if *section != Section::full(&self.symbols.array(*array).shape) {
                            sectioned = true;
                        }
                    }
                });
                if sectioned {
                    return Err(FrontError::new(
                        *span,
                        "array sections inside CSHIFT/EOSHIFT are not supported; shift whole arrays",
                    ));
                }
                if *dim < 1 || *dim > extents.len() {
                    return Err(FrontError::new(
                        *span,
                        format!("DIM={} out of range for rank {}", dim, extents.len()),
                    ));
                }
                let kind = match boundary {
                    None => ShiftKind::Circular,
                    Some(b) => ShiftKind::EndOff(*b),
                };
                Ok((
                    CExpr::Shift {
                        arg: Box::new(carg),
                        shift: *shift,
                        dim: dim - 1,
                        kind,
                        span: *span,
                    },
                    Some(extents),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Checked, FrontError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn resolves_arrays_scalars_and_default_distribution() {
        let c = check_src("PARAM N = 4\nREAL U(N,N)\nREAL C1 = 2.0\nU = C1 * U\n").unwrap();
        let u = c.symbols.lookup_array("U").unwrap();
        assert_eq!(c.symbols.array(u).shape, Shape::new([4, 4]));
        assert_eq!(c.symbols.array(u).dist, Distribution::block(2));
        assert_eq!(c.symbols.scalar(c.symbols.lookup_scalar("C1").unwrap()).value, 2.0);
    }

    #[test]
    fn distribute_overrides_default() {
        let c = check_src("REAL U(4,4)\n!HPF$ DISTRIBUTE U(BLOCK,*)\n").unwrap();
        let u = c.symbols.lookup_array("U").unwrap();
        assert_eq!(c.symbols.array(u).dist, Distribution(vec![DimDist::Block, DimDist::Collapsed]));
    }

    #[test]
    fn distribute_rank_mismatch_fails() {
        assert!(check_src("REAL U(4,4)\n!HPF$ DISTRIBUTE U(BLOCK)\n").is_err());
    }

    #[test]
    fn distribute_unknown_array_fails() {
        assert!(check_src("!HPF$ DISTRIBUTE U(BLOCK)\n").is_err());
    }

    #[test]
    fn section_bounds_checked() {
        assert!(check_src("PARAM N = 4\nREAL U(N,N)\nU(0:N,1:N) = 1\n").is_err());
        assert!(check_src("PARAM N = 4\nREAL U(N,N)\nU(1:N,1:N) = 1\n").is_ok());
    }

    #[test]
    fn conformance_checked() {
        // 2-element section vs 3-element section.
        let err = check_src("REAL A(4), B(4)\nA(1:2) = B(1:3)\n").unwrap_err();
        assert!(err.message.contains("shape mismatch"), "{err}");
        assert!(check_src("REAL A(4), B(4)\nA(1:2) = B(2:3)\n").is_ok());
    }

    #[test]
    fn scalar_broadcast_conforms() {
        assert!(check_src("REAL A(4)\nREAL C = 3.0\nA(1:2) = C\n").is_ok());
    }

    #[test]
    fn scalar_subscript_fails() {
        assert!(check_src("REAL A(4)\nREAL C\nA = C(1)\n").is_err());
    }

    #[test]
    fn shift_dim_checked() {
        assert!(check_src("REAL A(4,4), B(4,4)\nA = CSHIFT(B, SHIFT=1, DIM=3)\n").is_err());
        assert!(check_src("REAL A(4,4), B(4,4)\nA = CSHIFT(B, SHIFT=1, DIM=2)\n").is_ok());
    }

    #[test]
    fn shift_dim_is_zero_based_internally() {
        let c = check_src("REAL A(4,4), B(4,4)\nA = CSHIFT(B, SHIFT=1, DIM=2)\n").unwrap();
        match &c.stmts[0] {
            CStmt::Assign { rhs: CExpr::Shift { dim, .. }, .. } => assert_eq!(*dim, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shift_of_scalar_fails() {
        assert!(check_src("REAL A(4)\nREAL C\nA = CSHIFT(C, SHIFT=1, DIM=1)\n").is_err());
    }

    #[test]
    fn shift_of_section_rejected() {
        let err =
            check_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(B(1:N,1:N), SHIFT=1, DIM=1)\n");
        // B(1:N,1:N) is the full array, so it is allowed…
        assert!(err.is_ok());
        // …but a proper sub-section is not.
        let err2 =
            check_src("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = CSHIFT(B(2:N,1:N), SHIFT=1, DIM=1)\n");
        assert!(err2.is_err());
    }

    #[test]
    fn shift_of_expression_allowed() {
        let c = check_src("REAL A(4,4), B(4,4)\nA = CSHIFT(A + B, SHIFT=1, DIM=1)\n").unwrap();
        match &c.stmts[0] {
            CStmt::Assign { rhs: CExpr::Shift { arg, .. }, .. } => {
                assert!(matches!(**arg, CExpr::Bin(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn do_loop_checked() {
        let c = check_src("PARAM K = 3\nREAL A(4), B(4)\nDO K TIMES\nA = B\nENDDO\n").unwrap();
        match &c.stmts[0] {
            CStmt::Do { iters, body } => {
                assert_eq!(*iters, 3);
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_positive_extent_fails() {
        assert!(check_src("PARAM N = 0\nREAL A(N)\n").is_err());
    }

    #[test]
    fn index_subscript_becomes_degenerate_range() {
        let c = check_src("REAL A(4,4), B(4,4)\nA(2,1:4) = B(3,1:4)\n").unwrap();
        match &c.stmts[0] {
            CStmt::Assign { section, .. } => assert_eq!(section.dim(0), (2, 2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shift_count_helper() {
        let c = check_src("REAL A(4,4), B(4,4)\nA = CSHIFT(B,1,1) + CSHIFT(CSHIFT(B,1,1),-1,2)\n")
            .unwrap();
        match &c.stmts[0] {
            CStmt::Assign { rhs, .. } => assert_eq!(rhs.shift_count(), 3),
            other => panic!("{other:?}"),
        }
    }
}
