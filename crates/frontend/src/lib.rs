#![warn(missing_docs)]

//! # hpf-frontend — a mini-HPF/Fortran90 frontend for stencil kernels
//!
//! Parses the dialect of Fortran90/HPF the paper's examples are written in:
//! array declarations with `!HPF$ DISTRIBUTE` directives, whole-array and
//! array-section assignment statements, `CSHIFT`/`EOSHIFT` intrinsics,
//! scalar coefficients, and counted `DO … TIMES` time-stepping loops.
//!
//! ```text
//! PROGRAM five_point
//! PARAM N = 8
//! REAL SRC(N,N), DST(N,N)
//! REAL C1 = 0.25
//! !HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
//! !HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
//! DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) &
//!                  + C1 * SRC(2:N-1,1:N-2)
//! END
//! ```
//!
//! The pipeline is: [`lexer`] → [`parser`] ([`ast::Ast`]) → [`sema`]
//! ([`sema::Checked`], with concrete shapes, resolved symbols and verified
//! conformance). The `hpf-passes` crate normalizes a [`sema::Checked`]
//! program into the `hpf-ir` normal form, and the `hpf-exec` reference
//! interpreter evaluates it directly as the correctness oracle.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::Ast;
pub use error::{FrontError, Span};
pub use sema::{CExpr, CStmt, Checked};

/// Parse and semantically check a source program in one step.
pub fn compile_source(src: &str) -> Result<Checked, FrontError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(&tokens)?;
    sema::check(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_five_point() {
        let src = r#"
PROGRAM five_point
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1 = 0.25
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) &
                 + C1 * SRC(2:N-1,1:N-2)
END
"#;
        let checked = compile_source(src).expect("compiles");
        assert_eq!(checked.symbols.num_arrays(), 2);
        assert_eq!(checked.symbols.num_scalars(), 1);
        assert_eq!(checked.stmts.len(), 1);
    }

    #[test]
    fn end_to_end_error_reporting() {
        let err = compile_source("PROGRAM p\nREAL A(4)\nA = B\nEND").unwrap_err();
        assert!(err.to_string().contains("B"), "mentions unknown symbol: {err}");
    }
}
