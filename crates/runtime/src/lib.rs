#![allow(clippy::needless_range_loop)] // index-based dimension math reads clearer here
#![warn(missing_docs)]

//! # hpf-runtime — a distributed-memory machine simulator
//!
//! The substrate the paper's evaluation ran on was a 4-processor IBM SP-2
//! with MPI. This crate provides the equivalent machine as a simulator:
//!
//! * a processing-element (PE) grid ([`dist::PeGrid`]) with HPF `BLOCK`
//!   distribution arithmetic ([`dist::BlockDim`]);
//! * per-PE subgrids with *overlap areas* (ghost layers) on every side
//!   ([`subgrid::Subgrid`]), the paper's mechanism for receiving
//!   off-processor data (§3.1, after Gerndt);
//! * the two data-movement operations of stencil execution (§2.2):
//!   full [`Machine::cshift`] (interprocessor messages **plus** the
//!   intraprocessor copy) and [`Machine::overlap_shift`] (interprocessor
//!   only, into the overlap area, with optional RSD corner extension);
//! * message/byte/copy counters and an SP-2-flavoured analytical cost model
//!   ([`stats`], [`cost`]);
//! * per-PE memory accounting with an optional budget, reproducing the
//!   memory-exhaustion behaviour of Figure 11 ([`RtError::MemoryExhausted`]);
//! * deterministic communication schedules ([`schedule`]) shared by the
//!   sequential executor and the threaded SPMD executor in `hpf-exec`.

pub mod cost;
pub mod dist;
pub mod error;
pub mod machine;
pub mod schedule;
pub mod stats;
pub mod subgrid;

pub use cost::CostModel;
pub use dist::{BlockDim, PeGrid};
pub use error::RtError;
pub use machine::{ArrayMeta, Machine, MachineConfig, MoveKind, PeState};
pub use schedule::{CommAction, CompiledComm, CompiledFill, CompiledTransfer, Transfer};
pub use stats::{AggStats, PeStats};
pub use subgrid::Subgrid;
