//! Runtime errors.

use std::fmt;

/// Errors raised by the machine simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// A PE's memory budget was exceeded — the mechanism behind Figure 11's
    /// missing data points (the single-statement 9-point stencil exhausts
    /// 256 MB/PE through its twelve CSHIFT temporaries).
    MemoryExhausted {
        /// PE that failed the allocation.
        pe: usize,
        /// Bytes the allocation would have brought the PE to.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// An array operation referenced an unallocated array.
    NotAllocated(String),
    /// An array id was allocated twice without an intervening free.
    AlreadyAllocated(String),
    /// A shift distance does not fit the overlap width or block extents.
    ShiftTooWide {
        /// Offending shift amount.
        shift: i64,
        /// Along dimension.
        dim: usize,
        /// The limiting width (overlap width or minimum block extent).
        limit: usize,
    },
    /// The configured halo depth does not fit a PE's subgrid: a ghost
    /// region deeper than the block extent would wrap past the adjacent
    /// neighbor, silently mis-sizing (and mis-filling) the overlap area.
    /// Raised at allocation time so deep-halo (superstep) configurations
    /// fail loudly instead of corrupting exchanges.
    HaloTooDeep {
        /// The configured halo depth.
        halo: usize,
        /// Dimension whose block extent is too small.
        dim: usize,
        /// The smallest non-empty block extent along that dimension.
        extent: usize,
    },
    /// Array distribution incompatible with the machine (e.g. a collapsed
    /// dimension on a grid axis with more than one PE).
    BadDistribution(String),
    /// Mismatched ranks between machine grid and arrays.
    RankMismatch {
        /// Machine grid rank.
        machine: usize,
        /// Array rank.
        array: usize,
    },
    /// The static verifiers rejected a compiled kernel or execution plan in
    /// a checked build (`BV*` bytecode diagnostics, `PL*` plan-level race
    /// diagnostics). The report carries one line per violated obligation.
    VerificationFailed {
        /// Rendered diagnostics, one `CODE: message` line each.
        report: String,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::MemoryExhausted { pe, needed, budget } => {
                write!(f, "memory exhausted on PE {pe}: needs {needed} bytes, budget {budget}")
            }
            RtError::NotAllocated(name) => write!(f, "array {name} is not allocated"),
            RtError::AlreadyAllocated(name) => write!(f, "array {name} is already allocated"),
            RtError::ShiftTooWide { shift, dim, limit } => {
                write!(f, "shift {shift} along dim {} exceeds limit {limit}", dim + 1)
            }
            RtError::HaloTooDeep { halo, dim, extent } => {
                write!(
                    f,
                    "halo depth {halo} does not fit the per-PE subgrid: \
                     smallest block extent along dim {} is {extent}",
                    dim + 1
                )
            }
            RtError::BadDistribution(msg) => write!(f, "bad distribution: {msg}"),
            RtError::RankMismatch { machine, array } => {
                write!(f, "machine grid rank {machine} != array rank {array}")
            }
            RtError::VerificationFailed { report } => {
                write!(f, "static verification failed:\n{report}")
            }
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RtError::MemoryExhausted { pe: 2, needed: 1000, budget: 512 };
        assert!(e.to_string().contains("PE 2"));
        assert!(RtError::ShiftTooWide { shift: 3, dim: 1, limit: 1 }.to_string().contains("dim 2"));
        let h = RtError::HaloTooDeep { halo: 4, dim: 0, extent: 2 };
        assert!(h.to_string().contains("halo depth 4"), "{h}");
        assert!(h.to_string().contains("dim 1"), "{h}");
    }
}
