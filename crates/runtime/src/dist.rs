//! HPF `BLOCK` distribution arithmetic and the PE grid.

/// Block distribution of one dimension of extent `n` over `p` processors:
/// standard HPF `BLOCK` with block size `ceil(n/p)`; trailing processors may
/// own a short or empty range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDim {
    /// Global extent.
    pub n: usize,
    /// Number of processors along this axis.
    pub p: usize,
}

impl BlockDim {
    /// Construct; `p >= 1` required.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one processor per axis");
        BlockDim { n, p }
    }

    /// Block size `ceil(n/p)`.
    pub fn block(&self) -> usize {
        self.n.div_ceil(self.p)
    }

    /// Owned global range (1-based inclusive) of processor `k`; empty ranges
    /// are returned as `(lo, lo-1)`.
    pub fn owned(&self, k: usize) -> (i64, i64) {
        let b = self.block() as i64;
        let lo = k as i64 * b + 1;
        let hi = ((k as i64 + 1) * b).min(self.n as i64);
        if hi < lo {
            (lo, lo - 1)
        } else {
            (lo, hi)
        }
    }

    /// Local extent of processor `k`.
    pub fn extent(&self, k: usize) -> usize {
        let (lo, hi) = self.owned(k);
        (hi - lo + 1).max(0) as usize
    }

    /// Owner of global index `i` (1-based); `None` when out of bounds.
    pub fn owner(&self, i: i64) -> Option<usize> {
        if i < 1 || i > self.n as i64 {
            return None;
        }
        Some(((i - 1) as usize / self.block()).min(self.p - 1))
    }

    /// Smallest non-empty local extent over all processors — an upper bound
    /// on usable overlap widths and shift distances through overlap areas.
    pub fn min_extent(&self) -> usize {
        (0..self.p).map(|k| self.extent(k)).filter(|&e| e > 0).min().unwrap_or(0)
    }
}

/// The PE grid: processors arranged in an `r`-dimensional mesh matching the
/// rank of the program's arrays. Axis `d` of the mesh distributes dimension
/// `d` of `BLOCK` dimensions; collapsed (`*`) dimensions require a grid
/// extent of 1 along that axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeGrid {
    /// Processors per axis.
    pub dims: Vec<usize>,
}

impl PeGrid {
    /// Construct a grid; every axis must have at least one processor.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(!dims.is_empty() && dims.iter().all(|&d| d >= 1), "bad PE grid");
        PeGrid { dims }
    }

    /// Rank of the grid.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of PEs.
    pub fn num_pes(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of linear PE index `pe` (row-major: last axis fastest).
    pub fn coords(&self, pe: usize) -> Vec<usize> {
        assert!(pe < self.num_pes());
        let mut c = vec![0; self.rank()];
        let mut rem = pe;
        for d in (0..self.rank()).rev() {
            c[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        c
    }

    /// Linear index of grid coordinates.
    pub fn linear(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.rank());
        let mut idx = 0;
        for d in 0..self.rank() {
            assert!(coords[d] < self.dims[d]);
            idx = idx * self.dims[d] + coords[d];
        }
        idx
    }

    /// Linear index of the PE whose coordinate along `axis` is replaced by
    /// `k`, all other coordinates taken from `pe`.
    pub fn with_coord(&self, pe: usize, axis: usize, k: usize) -> usize {
        let mut c = self.coords(pe);
        c[axis] = k;
        self.linear(&c)
    }

    /// Neighbour of `pe` along `axis` at offset `step` with circular wrap.
    pub fn neighbor(&self, pe: usize, axis: usize, step: i64) -> usize {
        let mut c = self.coords(pe);
        let p = self.dims[axis] as i64;
        c[axis] = (((c[axis] as i64 + step) % p + p) % p) as usize;
        self.linear(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_even_division() {
        let b = BlockDim::new(8, 4);
        assert_eq!(b.block(), 2);
        assert_eq!(b.owned(0), (1, 2));
        assert_eq!(b.owned(3), (7, 8));
        assert_eq!(b.extent(2), 2);
        assert_eq!(b.min_extent(), 2);
    }

    #[test]
    fn block_uneven_division() {
        let b = BlockDim::new(10, 4); // blocks of 3: 1-3,4-6,7-9,10-10
        assert_eq!(b.block(), 3);
        assert_eq!(b.owned(0), (1, 3));
        assert_eq!(b.owned(3), (10, 10));
        assert_eq!(b.extent(3), 1);
        assert_eq!(b.min_extent(), 1);
    }

    #[test]
    fn block_with_empty_processor() {
        let b = BlockDim::new(4, 3); // blocks of 2: 1-2, 3-4, empty
        assert_eq!(b.extent(2), 0);
        assert_eq!(b.min_extent(), 2);
        let (lo, hi) = b.owned(2);
        assert!(hi < lo);
    }

    #[test]
    fn owner_lookup() {
        let b = BlockDim::new(10, 4);
        assert_eq!(b.owner(1), Some(0));
        assert_eq!(b.owner(3), Some(0));
        assert_eq!(b.owner(4), Some(1));
        assert_eq!(b.owner(10), Some(3));
        assert_eq!(b.owner(0), None);
        assert_eq!(b.owner(11), None);
    }

    #[test]
    fn owner_matches_owned() {
        for (n, p) in [(8, 4), (10, 4), (5, 2), (7, 3), (16, 1)] {
            let b = BlockDim::new(n, p);
            for i in 1..=n as i64 {
                let k = b.owner(i).unwrap();
                let (lo, hi) = b.owned(k);
                assert!(i >= lo && i <= hi, "n={n} p={p} i={i} k={k}");
            }
        }
    }

    #[test]
    fn grid_roundtrip() {
        let g = PeGrid::new([2, 3]);
        assert_eq!(g.num_pes(), 6);
        for pe in 0..6 {
            assert_eq!(g.linear(&g.coords(pe)), pe);
        }
        assert_eq!(g.coords(0), vec![0, 0]);
        assert_eq!(g.coords(5), vec![1, 2]);
    }

    #[test]
    fn grid_neighbors_wrap() {
        let g = PeGrid::new([2, 2]);
        // PE 0 = (0,0). +1 along axis 0 -> (1,0) = 2.
        assert_eq!(g.neighbor(0, 0, 1), 2);
        assert_eq!(g.neighbor(2, 0, 1), 0); // wraps
        assert_eq!(g.neighbor(0, 1, -1), 1); // wraps to (0,1)
        assert_eq!(g.neighbor(0, 0, 2), 0); // full cycle
        assert_eq!(g.neighbor(0, 0, -3), 2);
    }

    #[test]
    fn with_coord() {
        let g = PeGrid::new([2, 3]);
        let pe = g.linear(&[1, 2]);
        assert_eq!(g.coords(g.with_coord(pe, 1, 0)), vec![1, 0]);
    }

    #[test]
    fn one_dimensional_grid() {
        let g = PeGrid::new([4]);
        assert_eq!(g.num_pes(), 4);
        assert_eq!(g.neighbor(3, 0, 1), 0);
    }
}
