//! Analytical cost model.
//!
//! The paper reports wall-clock seconds on a 4-processor IBM SP-2. We cannot
//! rerun that machine, so alongside real wall-clock of the simulated
//! execution we compute a *modeled time* from the counters, with constants
//! flavoured after 1997-era SP-2 characteristics: large per-message software
//! overhead (MPI + strided pack/unpack), moderate memory-copy bandwidth, and
//! cheap flops relative to memory accesses (stencil subgrid loops are
//! memory-bound, paper §2.2).
//!
//! The modeled time of a run is `max` over PEs of each PE's accumulated
//! nanoseconds — the SPMD critical path under barrier-synchronised steps.

use crate::stats::{AggStats, PeStats};

/// Per-operation costs in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed cost per message (software overhead + latency), each side.
    pub alpha_ns: f64,
    /// Per-byte transfer cost (pack + wire + unpack), each side.
    pub beta_ns_per_byte: f64,
    /// Per-byte cost of intraprocessor copies (local memcpy through memory).
    pub copy_ns_per_byte: f64,
    /// Cost of one array-element load in a subgrid loop.
    pub load_ns: f64,
    /// Extra cost per load when the innermost loop is not stride-1 (cache
    /// lines wasted; what loop permutation removes).
    pub strided_load_extra_ns: f64,
    /// Cost of one array-element store.
    pub store_ns: f64,
    /// Cost of one floating-point operation.
    pub flop_ns: f64,
    /// Loop-iteration overhead (index updates, branch).
    pub iter_ns: f64,
    /// Cost of allocating a distributed temporary (per PE, per array).
    pub alloc_ns: f64,
}

impl CostModel {
    /// SP-2-flavoured defaults. With these constants communication and
    /// computation are of comparable magnitude for mid-size problems on a
    /// 2×2 grid, which is the regime the paper's Figure 17 percentages come
    /// from (each pipeline stage visibly reduces total time).
    pub fn sp2() -> Self {
        CostModel {
            alpha_ns: 300_000.0,    // ~300 µs per message incl. library overhead
            beta_ns_per_byte: 60.0, // ~16 MB/s effective strided pack+send
            copy_ns_per_byte: 10.0, // ~100 MB/s local copy
            load_ns: 20.0,
            strided_load_extra_ns: 60.0,
            store_ns: 20.0,
            flop_ns: 5.0,
            iter_ns: 5.0,
            alloc_ns: 50_000.0, // temp allocation + page touch
        }
    }

    /// A model where communication is free — isolates computation effects
    /// (used by ablation benches).
    pub fn compute_only() -> Self {
        CostModel {
            alpha_ns: 0.0,
            beta_ns_per_byte: 0.0,
            copy_ns_per_byte: 0.0,
            alloc_ns: 0.0,
            ..Self::sp2()
        }
    }

    /// Modeled nanoseconds attributable to one PE's counters.
    pub fn pe_time_ns(&self, s: &PeStats) -> f64 {
        (s.msgs_sent + s.msgs_recv) as f64 * self.alpha_ns
            + (s.bytes_sent + s.bytes_recv) as f64 * self.beta_ns_per_byte
            + (s.intra_bytes + s.wrap_bytes) as f64 * self.copy_ns_per_byte
            + s.loads as f64 * self.load_ns
            + s.strided_loads as f64 * self.strided_load_extra_ns
            + s.stores as f64 * self.store_ns
            + s.flops as f64 * self.flop_ns
            + s.iters as f64 * self.iter_ns
            + s.allocs as f64 * self.alloc_ns
    }

    /// Modeled time of a run: the slowest PE (critical path).
    ///
    /// `pe_time_ns` charges every counter serially, which matches the
    /// blocking engines: a PE that posts a receive stalls until the message
    /// arrives. Split-phase exchange windows break that assumption — the
    /// receive is in flight while the PE computes its interior — so each
    /// overlapped window records the modeled receive time that was actually
    /// covered by measured interior compute (`AggStats::hidden_comm_ns`,
    /// exact counter deltas, `min(recv_ns, interior_ns)` per window) and
    /// that credit is subtracted here per PE. Blocking engines record zero
    /// hidden time, so their modeled time is unchanged.
    pub fn modeled_time_ns(&self, agg: &AggStats) -> f64 {
        agg.per_pe
            .iter()
            .enumerate()
            .map(|(pe, s)| {
                let hidden = agg.hidden_comm_ns.get(pe).copied().unwrap_or(0.0);
                (self.pe_time_ns(s) - hidden).max(0.0)
            })
            .fold(0.0, f64::max)
    }

    /// Modeled time in milliseconds.
    pub fn modeled_time_ms(&self, agg: &AggStats) -> f64 {
        self.modeled_time_ns(agg) / 1e6
    }

    /// Modeled nanoseconds of computing one stencil point given the nest's
    /// per-point load/store/flop counts (one loop iteration of overhead).
    /// Prices the redundant trapezoid recompute a superstep schedule pays.
    pub fn point_ns(&self, loads: u64, stores: u64, flops: u64) -> f64 {
        loads as f64 * self.load_ns
            + stores as f64 * self.store_ns
            + flops as f64 * self.flop_ns
            + self.iter_ns
    }

    /// Predicted modeled-time gain, in nanoseconds per superstep on the
    /// critical-path PE, of one depth-`k` superstep over `k` classic steps:
    /// the `k-1` elided exchange phases (message endpoints × latency plus
    /// bytes × bandwidth, both as seen by one PE per classic step) minus the
    /// price of the `redundant_points` the trapezoid sweeps recompute
    /// (`point_ns` from [`CostModel::point_ns`]). Positive predicts the
    /// superstep schedule wins; the tuner uses this to keep or prune deep-k
    /// candidates without running them.
    pub fn superstep_gain_ns(
        &self,
        k: usize,
        msgs: u64,
        bytes: u64,
        redundant_points: u64,
        point_ns: f64,
    ) -> f64 {
        let per_exchange = msgs as f64 * self.alpha_ns + bytes as f64 * self.beta_ns_per_byte;
        k.saturating_sub(1) as f64 * per_exchange - redundant_points as f64 * point_ns
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_time_combines_terms() {
        let m = CostModel {
            alpha_ns: 100.0,
            beta_ns_per_byte: 1.0,
            copy_ns_per_byte: 2.0,
            load_ns: 3.0,
            strided_load_extra_ns: 0.0,
            store_ns: 4.0,
            flop_ns: 5.0,
            iter_ns: 6.0,
            alloc_ns: 7.0,
        };
        let s = PeStats {
            msgs_sent: 1,
            msgs_recv: 1,
            bytes_sent: 10,
            bytes_recv: 10,
            intra_bytes: 5,
            wrap_bytes: 5,
            loads: 2,
            strided_loads: 0,
            stores: 2,
            flops: 2,
            iters: 2,
            allocs: 1,
        };
        let t = m.pe_time_ns(&s);
        assert_eq!(t, 200.0 + 20.0 + 20.0 + 6.0 + 8.0 + 10.0 + 12.0 + 7.0);
    }

    #[test]
    fn modeled_time_is_max_over_pes() {
        let m = CostModel::sp2();
        let slow = PeStats { loads: 1_000_000, ..Default::default() };
        let fast = PeStats { loads: 10, ..Default::default() };
        let agg =
            AggStats { per_pe: vec![fast, slow, fast], peak_bytes: vec![], ..Default::default() };
        assert_eq!(m.modeled_time_ns(&agg), m.pe_time_ns(&slow));
    }

    #[test]
    fn hidden_comm_credit_reduces_modeled_time() {
        let m = CostModel::sp2();
        let s = PeStats { msgs_recv: 2, loads: 1_000, ..Default::default() };
        let serial = AggStats { per_pe: vec![s], peak_bytes: vec![], ..Default::default() };
        let overlapped = AggStats {
            per_pe: vec![s],
            peak_bytes: vec![],
            hidden_comm_ns: vec![m.alpha_ns], // one receive hid behind compute
            ..Default::default()
        };
        assert_eq!(m.modeled_time_ns(&serial), m.pe_time_ns(&s));
        assert_eq!(m.modeled_time_ns(&overlapped), m.pe_time_ns(&s) - m.alpha_ns);
    }

    #[test]
    fn compute_only_zeroes_comm() {
        let m = CostModel::compute_only();
        let s = PeStats {
            msgs_sent: 100,
            bytes_sent: 1 << 20,
            intra_bytes: 1 << 20,
            ..Default::default()
        };
        assert_eq!(m.pe_time_ns(&s), 0.0);
    }

    #[test]
    fn superstep_gain_trades_messages_for_redundant_compute() {
        let m = CostModel::sp2();
        let point = m.point_ns(5, 1, 6);
        assert_eq!(point, 5.0 * m.load_ns + m.store_ns + 6.0 * m.flop_ns + m.iter_ns);
        // Depth 1 elides nothing and recomputes nothing: zero gain.
        assert_eq!(m.superstep_gain_ns(1, 8, 4096, 0, point), 0.0);
        // Message latency dominates small redundant regions: depth 4 wins.
        assert!(m.superstep_gain_ns(4, 8, 4096, 1_000, point) > 0.0);
        // A huge redundant region swamps the saved latency: depth 4 loses.
        assert!(m.superstep_gain_ns(4, 8, 4096, 100_000_000, point) < 0.0);
        // compute_only: messages are free, so any redundancy is a loss.
        assert!(CostModel::compute_only().superstep_gain_ns(4, 8, 4096, 1, point) < 0.0);
    }

    #[test]
    fn sp2_message_dominates_small_transfers() {
        let m = CostModel::sp2();
        // One 2 KB message: latency term should dominate the byte term.
        let s = PeStats { msgs_sent: 1, bytes_sent: 2048, ..Default::default() };
        assert!(m.alpha_ns > 2048.0 * m.beta_ns_per_byte);
        assert!(m.pe_time_ns(&s) > m.alpha_ns);
    }
}
