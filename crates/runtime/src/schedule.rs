//! Deterministic communication schedules.
//!
//! Every data-movement operation (full `CSHIFT`, `OVERLAP_SHIFT`) is planned
//! as a list of [`CommAction`]s — rectangular region transfers between PEs
//! plus constant fills for `EOSHIFT` boundaries. The plan is a pure function
//! of the array geometry and the operation, so the sequential executor and
//! every thread of the SPMD executor compute identical schedules, which is
//! what makes threaded runs deterministic and bitwise equal to sequential
//! runs.
//!
//! For time-stepped kernels the plan can further be *compiled* against the
//! allocated subgrids into a [`CompiledComm`]: flat pack/unpack element-index
//! lists plus a pooled message buffer per transfer. Executing a compiled
//! schedule is then "pack via precomputed indices → deliver → unpack" with
//! zero per-step subgrid math and zero per-step allocation — the persistent
//! halo-exchange pattern of GCL-style stencil libraries and persistent MPI.

use crate::dist::{BlockDim, PeGrid};
use crate::error::RtError;
use hpf_ir::{ArrayId, Rsd, ShiftKind};

/// A rectangular region copy between two PEs (or within one PE when
/// `src_pe == dst_pe`). Ranges are local 1-based per-dimension bounds and
/// may extend into halo cells on either side.
#[derive(Clone, Debug, PartialEq)]
pub struct Transfer {
    /// Sending PE.
    pub src_pe: usize,
    /// Receiving PE.
    pub dst_pe: usize,
    /// Region in the sender's local coordinates.
    pub src_local: Vec<(i64, i64)>,
    /// Region in the receiver's local coordinates (same extents).
    pub dst_local: Vec<(i64, i64)>,
}

impl Transfer {
    /// Number of elements moved.
    pub fn elements(&self) -> usize {
        crate::subgrid::region_len(&self.src_local)
    }

    /// Bytes moved.
    pub fn bytes(&self) -> usize {
        self.elements() * std::mem::size_of::<f64>()
    }
}

/// One step of a communication plan.
#[derive(Clone, Debug, PartialEq)]
pub enum CommAction {
    /// Copy a region between PEs (a message) or within a PE (a local copy).
    Transfer(Transfer),
    /// Fill a local region of one PE with a constant (`EOSHIFT` boundary).
    Fill {
        /// PE whose subgrid is filled.
        pe: usize,
        /// Region in local coordinates.
        local: Vec<(i64, i64)>,
        /// Fill value.
        value: f64,
    },
}

/// One [`Transfer`] compiled against allocated subgrids: the region bounds
/// are resolved into flat storage indices (sender side and receiver side, in
/// matching row-major order) and the message buffer is allocated once and
/// pooled across executions.
#[derive(Clone, Debug)]
pub struct CompiledTransfer {
    /// Sending PE.
    pub src_pe: usize,
    /// Receiving PE.
    pub dst_pe: usize,
    /// Flat indices into the sender's raw subgrid storage (pack order).
    pub src_idx: Vec<usize>,
    /// Flat indices into the receiver's raw subgrid storage (unpack order).
    pub dst_idx: Vec<usize>,
    /// Pooled message buffer, `src_idx.len()` elements, reused every step.
    pub buf: Vec<f64>,
}

/// A boundary-value fill compiled to flat storage indices.
#[derive(Clone, Debug)]
pub struct CompiledFill {
    /// PE whose subgrid is filled.
    pub pe: usize,
    /// Flat indices into that PE's raw subgrid storage.
    pub idx: Vec<usize>,
    /// Fill value.
    pub value: f64,
}

/// A communication operation compiled once and executed many times: the
/// persistent-schedule analogue of `MPI_Send_init`/`MPI_Recv_init`. Built by
/// [`crate::Machine::compile_comm`]; executed by
/// [`crate::Machine::apply_compiled`]. The original [`CommAction`] list is
/// retained for engines (the SPMD executor) that deliver messages themselves
/// but still want to skip per-step plan recomputation.
#[derive(Clone, Debug)]
pub struct CompiledComm {
    /// Destination array.
    pub dst: ArrayId,
    /// Source array (equal to `dst` for overlap shifts).
    pub src: ArrayId,
    /// Accounting class of self-transfers.
    pub kind: crate::machine::MoveKind,
    /// Transfers with precomputed pack/unpack indices and pooled buffers.
    pub transfers: Vec<CompiledTransfer>,
    /// Constant fills with precomputed indices.
    pub fills: Vec<CompiledFill>,
    /// The uncompiled plan this was built from.
    pub actions: Vec<CommAction>,
}

impl CompiledComm {
    /// Total elements moved per execution.
    pub fn elements(&self) -> usize {
        self.transfers.iter().map(|t| t.src_idx.len()).sum()
    }

    /// Bytes held by the pooled buffers (the allocation executing the
    /// schedule avoids re-making every step).
    pub fn pooled_bytes(&self) -> usize {
        self.transfers.iter().map(|t| t.buf.len() * std::mem::size_of::<f64>()).sum()
    }

    /// Split this schedule into its two split-phase halves for one PE; see
    /// [`split_halves`].
    pub fn halves(&self, pe: usize) -> CommHalves<'_> {
        split_halves(&self.actions, pe)
    }

    /// Would posting this schedule's sends before `earlier`'s receives have
    /// completed read stale data? True when some PE's outgoing (or local
    /// self-) transfer of this schedule reads a region that an incoming
    /// remote transfer of `earlier` writes on that PE, on the same array.
    /// This is exactly the corner-forwarding pattern of RSD-extended
    /// exchanges: a dim-2 overlap shift sends corner cells that the dim-1
    /// shift's receives deposited, so its post half must wait for the dim-1
    /// receives to drain. Independent exchanges (5-point stencils, disjoint
    /// arrays) report `false` and may stay in flight together.
    pub fn depends_on(&self, earlier: &CompiledComm) -> bool {
        if self.src != earlier.dst {
            return false;
        }
        self.actions.iter().any(|a| {
            let read = match a {
                CommAction::Transfer(t) => t,
                CommAction::Fill { .. } => return false,
            };
            earlier.actions.iter().any(|e| match e {
                CommAction::Transfer(w) if w.src_pe != w.dst_pe && w.dst_pe == read.src_pe => {
                    regions_intersect(&read.src_local, &w.dst_local)
                }
                _ => false,
            })
        })
    }
}

/// Do two local regions (inclusive per-dimension ranges) share any point?
pub fn regions_intersect(a: &[(i64, i64)], b: &[(i64, i64)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(&(alo, ahi), &(blo, bhi))| alo.max(blo) <= ahi.min(bhi))
}

/// One PE's view of a communication plan, split into the two halves of a
/// split-phase exchange: the *post* half (outgoing messages plus the local
/// fills and self-transfers, all safe to apply before any receive) and the
/// *complete* half (incoming remote transfers, to be drained in plan order).
/// Both halves preserve plan order, so tag assignment and receive matching
/// are identical to the blocking protocol.
pub struct CommHalves<'a> {
    /// Outgoing remote transfers (this PE is the sender), in plan order.
    pub sends: Vec<&'a Transfer>,
    /// Local work: constant fills on this PE and self-transfers, in plan
    /// order (the action carries the kind distinction for accounting).
    pub locals: Vec<&'a CommAction>,
    /// Incoming remote transfers (this PE is the receiver), in plan order.
    pub recvs: Vec<&'a Transfer>,
}

/// Split a communication plan into its two split-phase halves for `pe`;
/// see [`CommHalves`].
pub fn split_halves(actions: &[CommAction], pe: usize) -> CommHalves<'_> {
    let mut h = CommHalves { sends: Vec::new(), locals: Vec::new(), recvs: Vec::new() };
    for action in actions {
        match action {
            CommAction::Transfer(t) if t.src_pe == pe && t.dst_pe != pe => h.sends.push(t),
            CommAction::Transfer(t) if t.src_pe == pe && t.dst_pe == pe => h.locals.push(action),
            CommAction::Transfer(t) if t.dst_pe == pe => h.recvs.push(t),
            CommAction::Fill { pe: p, .. } if *p == pe => h.locals.push(action),
            _ => {}
        }
    }
    h
}

/// Geometry of one distributed array on a machine: a [`BlockDim`] per
/// dimension (collapsed dimensions use `p = 1`).
#[derive(Clone, Debug, PartialEq)]
pub struct Geometry {
    /// Per-dimension distribution arithmetic.
    pub dims: Vec<BlockDim>,
    /// The PE grid.
    pub grid: PeGrid,
}

impl Geometry {
    /// Construct; grid rank must equal the number of dimensions.
    pub fn new(dims: Vec<BlockDim>, grid: PeGrid) -> Self {
        assert_eq!(dims.len(), grid.rank());
        Geometry { dims, grid }
    }

    /// Owned global section of a PE.
    pub fn owned(&self, pe: usize) -> Vec<(i64, i64)> {
        let c = self.grid.coords(pe);
        (0..self.dims.len()).map(|d| self.dims[d].owned(c[d])).collect()
    }

    /// Local extents of a PE.
    pub fn extents(&self, pe: usize) -> Vec<usize> {
        let c = self.grid.coords(pe);
        (0..self.dims.len()).map(|d| self.dims[d].extent(c[d])).collect()
    }

    /// True when the PE owns no elements.
    pub fn is_empty(&self, pe: usize) -> bool {
        self.extents(pe).contains(&0)
    }
}

/// Plan an `OVERLAP_SHIFT(A, SHIFT=s, DIM=d [, rsd])`: fill `|s|` ghost
/// layers on the `sign(s)` side of dimension `d` of every PE, transferring
/// from the circular neighbour (or filling the boundary value for
/// [`ShiftKind::EndOff`] at the global edge). The RSD extends the
/// transferred section into other dimensions' overlap areas so corner
/// elements ride along (paper §3.3).
pub fn overlap_shift_plan(
    geom: &Geometry,
    shift: i64,
    dim: usize,
    rsd: Option<&Rsd>,
    kind: ShiftKind,
    halo: usize,
) -> Result<Vec<CommAction>, RtError> {
    let s = shift;
    if s == 0 {
        return Ok(Vec::new());
    }
    let mag = s.unsigned_abs() as usize;
    let limit = halo.min(geom.dims[dim].min_extent());
    if mag > limit {
        return Err(RtError::ShiftTooWide { shift: s, dim, limit });
    }
    let rank = geom.dims.len();
    let mut plan = Vec::new();
    for pe in 0..geom.grid.num_pes() {
        if geom.is_empty(pe) {
            continue;
        }
        let c = geom.grid.coords(pe);
        let ext = geom.extents(pe);
        // Ghost region being filled, in receiver-local coordinates.
        let ghost_d: (i64, i64) =
            if s > 0 { (ext[dim] as i64 + 1, ext[dim] as i64 + s) } else { (1 - mag as i64, 0) };
        // Section in the other dimensions, optionally RSD-extended.
        let mut region: Vec<(i64, i64)> = Vec::with_capacity(rank);
        for e in 0..rank {
            if e == dim {
                region.push(ghost_d);
            } else {
                let (mut lo, mut hi) = (1i64, ext[e] as i64);
                if let Some(r) = rsd {
                    lo -= r.ext[e].0 as i64;
                    hi += r.ext[e].1 as i64;
                }
                region.push((lo, hi));
            }
        }
        // Which PE supplies the data? The circular neighbour along `dim`
        // among non-empty PEs. Because BLOCK owners are contiguous from
        // coordinate 0, the non-empty PEs along the axis are 0..occ.
        let occ = (0..geom.grid.dims[dim]).filter(|&k| geom.dims[dim].extent(k) > 0).count();
        let at_high_edge = c[dim] + 1 == occ;
        let at_low_edge = c[dim] == 0;
        let boundary_side = (s > 0 && at_high_edge) || (s < 0 && at_low_edge);
        if boundary_side {
            if let ShiftKind::EndOff(value) = kind {
                plan.push(CommAction::Fill { pe, local: region, value });
                continue;
            }
        }
        // Circular source coordinate along the axis.
        let src_k = if s > 0 {
            if at_high_edge {
                0
            } else {
                c[dim] + 1
            }
        } else if at_low_edge {
            occ - 1
        } else {
            c[dim] - 1
        };
        let src_pe = geom.grid.with_coord(pe, dim, src_k);
        let src_ext_d = geom.dims[dim].extent(src_k) as i64;
        // Sender-side rows: its first |s| rows for s>0, last |s| for s<0.
        let src_d: (i64, i64) = if s > 0 { (1, s) } else { (src_ext_d + s + 1, src_ext_d) };
        let mut src_local = region.clone();
        src_local[dim] = src_d;
        plan.push(CommAction::Transfer(Transfer {
            src_pe,
            dst_pe: pe,
            src_local,
            dst_local: region,
        }));
    }
    Ok(plan)
}

/// Plan a full `DST = CSHIFT(SRC, SHIFT=s, DIM=d)` / `EOSHIFT`: every owned
/// element of the destination receives `SRC(i + s)` along `d` (circular
/// wrap, or the boundary value when `i + s` falls outside the array for
/// end-off shifts). Transfers with `src_pe == dst_pe` are the shift's
/// *intraprocessor* component — the movement the offset-array optimization
/// eliminates.
pub fn cshift_plan(geom: &Geometry, shift: i64, dim: usize, kind: ShiftKind) -> Vec<CommAction> {
    let n = geom.dims[dim].n as i64;
    let rank = geom.dims.len();
    let mut plan = Vec::new();
    // Normalize circular shifts to [0, n); handle |s| >= n end-off fills.
    let (s, full_fill) = match kind {
        ShiftKind::Circular => (((shift % n) + n) % n, false),
        ShiftKind::EndOff(_) => (shift, shift.abs() >= n),
    };
    for pe in 0..geom.grid.num_pes() {
        if geom.is_empty(pe) {
            continue;
        }
        let c = geom.grid.coords(pe);
        let ext = geom.extents(pe);
        let (dlo, dhi) = geom.dims[dim].owned(c[dim]);
        let full_local: Vec<(i64, i64)> = (0..rank).map(|e| (1, ext[e] as i64)).collect();
        if full_fill {
            if let ShiftKind::EndOff(value) = kind {
                plan.push(CommAction::Fill { pe, local: full_local, value });
            }
            continue;
        }
        // Needed source rows: [dlo+s, dhi+s]; split into wrap pieces.
        let (k_range, wrap_allowed): (&[i64], bool) = match kind {
            ShiftKind::Circular => (&[0, 1], true),
            ShiftKind::EndOff(_) => (&[0], false),
        };
        for &k in k_range {
            let plo = (dlo + s).max(1 + k * n);
            let phi = (dhi + s).min(n + k * n);
            if phi < plo {
                continue;
            }
            // Actual global source rows.
            let (slo_g, shi_g) = (plo - k * n, phi - k * n);
            // Find owning PEs along the axis.
            for src_k in 0..geom.grid.dims[dim] {
                let (olo, ohi) = geom.dims[dim].owned(src_k);
                if ohi < olo {
                    continue;
                }
                let a = slo_g.max(olo);
                let b = shi_g.min(ohi);
                if b < a {
                    continue;
                }
                let src_pe = geom.grid.with_coord(pe, dim, src_k);
                // Destination global rows for this sub-piece.
                let (tlo, thi) = (a + k * n - s, b + k * n - s);
                let mut src_local = full_local.clone();
                let mut dst_local = full_local.clone();
                src_local[dim] = (a - olo + 1, b - olo + 1);
                dst_local[dim] = (tlo - dlo + 1, thi - dlo + 1);
                plan.push(CommAction::Transfer(Transfer {
                    src_pe,
                    dst_pe: pe,
                    src_local,
                    dst_local,
                }));
            }
            let _ = wrap_allowed;
        }
        // End-off boundary fills: destination rows whose source falls
        // outside [1, n].
        if let ShiftKind::EndOff(value) = kind {
            // dst global rows g in [dlo, dhi] with g+s < 1 or g+s > n.
            let mut fills: Vec<(i64, i64)> = Vec::new();
            if s > 0 {
                let lo = (n - s + 1).max(dlo);
                if lo <= dhi {
                    fills.push((lo, dhi));
                }
            } else if s < 0 {
                let hi = (-s).min(dhi);
                if dlo <= hi {
                    fills.push((dlo, hi));
                }
            }
            for (glo, ghi) in fills {
                let mut local = full_local.clone();
                local[dim] = (glo - dlo + 1, ghi - dlo + 1);
                plan.push(CommAction::Fill { pe, local, value });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_2x2_8x8() -> Geometry {
        Geometry::new(vec![BlockDim::new(8, 2), BlockDim::new(8, 2)], PeGrid::new([2, 2]))
    }

    #[test]
    fn geometry_owned_sections() {
        let g = geom_2x2_8x8();
        assert_eq!(g.owned(0), vec![(1, 4), (1, 4)]);
        assert_eq!(g.owned(3), vec![(5, 8), (5, 8)]);
        assert_eq!(g.extents(1), vec![4, 4]);
        assert!(!g.is_empty(2));
    }

    #[test]
    fn overlap_shift_plus_one_dim0() {
        let g = geom_2x2_8x8();
        let plan = overlap_shift_plan(&g, 1, 0, None, ShiftKind::Circular, 1).unwrap();
        // Every PE receives one transfer.
        assert_eq!(plan.len(), 4);
        // PE 0 (coords 0,0) receives from PE (1,0) = 2 into ghost row 5.
        let t = plan
            .iter()
            .find_map(|a| match a {
                CommAction::Transfer(t) if t.dst_pe == 0 => Some(t),
                _ => None,
            })
            .unwrap();
        assert_eq!(t.src_pe, 2);
        assert_eq!(t.dst_local[0], (5, 5));
        assert_eq!(t.src_local[0], (1, 1));
        assert_eq!(t.src_local[1], (1, 4));
        assert_eq!(t.bytes(), 4 * 8);
    }

    #[test]
    fn overlap_shift_wraps_at_global_edge() {
        let g = geom_2x2_8x8();
        let plan = overlap_shift_plan(&g, 1, 0, None, ShiftKind::Circular, 1).unwrap();
        // PE 2 (coords 1,0) is at the high edge; circular source is (0,0)=0.
        let t = plan
            .iter()
            .find_map(|a| match a {
                CommAction::Transfer(t) if t.dst_pe == 2 => Some(t),
                _ => None,
            })
            .unwrap();
        assert_eq!(t.src_pe, 0);
    }

    #[test]
    fn overlap_shift_endoff_fills_boundary() {
        let g = geom_2x2_8x8();
        let plan = overlap_shift_plan(&g, -1, 1, None, ShiftKind::EndOff(9.0), 1).unwrap();
        // PEs at the low edge of dim 1 (coords (_,0): PEs 0 and 2) get fills.
        let fills: Vec<_> = plan
            .iter()
            .filter_map(|a| match a {
                CommAction::Fill { pe, local, value } => Some((*pe, local.clone(), *value)),
                _ => None,
            })
            .collect();
        assert_eq!(fills.len(), 2);
        for (pe, local, value) in fills {
            assert!(pe == 0 || pe == 2);
            assert_eq!(local[1], (0, 0));
            assert_eq!(value, 9.0);
        }
    }

    #[test]
    fn overlap_shift_rsd_extends_other_dim() {
        let g = geom_2x2_8x8();
        let mut rsd = Rsd::none(2);
        rsd.extend(0, -1);
        rsd.extend(0, 1);
        let plan = overlap_shift_plan(&g, -1, 1, Some(&rsd), ShiftKind::Circular, 1).unwrap();
        for a in &plan {
            if let CommAction::Transfer(t) = a {
                assert_eq!(t.src_local[0], (0, 5), "extended into dim-0 halo");
                assert_eq!(t.dst_local[0], (0, 5));
            }
        }
    }

    #[test]
    fn overlap_shift_too_wide_fails() {
        let g = geom_2x2_8x8();
        let err = overlap_shift_plan(&g, 2, 0, None, ShiftKind::Circular, 1).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { limit: 1, .. }));
        // Wider halo allows it.
        assert!(overlap_shift_plan(&g, 2, 0, None, ShiftKind::Circular, 2).is_ok());
    }

    #[test]
    fn overlap_shift_single_pe_axis_is_local_wrap() {
        let g = Geometry::new(vec![BlockDim::new(8, 1), BlockDim::new(8, 4)], PeGrid::new([1, 4]));
        let plan = overlap_shift_plan(&g, 1, 0, None, ShiftKind::Circular, 1).unwrap();
        for a in plan {
            match a {
                CommAction::Transfer(t) => {
                    assert_eq!(t.src_pe, t.dst_pe, "wrap within the PE");
                    assert_eq!(t.src_local[0], (1, 1));
                    assert_eq!(t.dst_local[0], (9, 9));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn cshift_unit_shift_splits_intra_and_inter() {
        let g = geom_2x2_8x8();
        let plan = cshift_plan(&g, 1, 0, ShiftKind::Circular);
        let (intra, inter): (Vec<_>, Vec<_>) = plan
            .iter()
            .filter_map(|a| match a {
                CommAction::Transfer(t) => Some(t),
                _ => None,
            })
            .partition(|t| t.src_pe == t.dst_pe);
        // Each PE keeps 3 of its 4 rows locally and receives 1 row.
        assert_eq!(intra.len(), 4);
        assert_eq!(inter.len(), 4);
        for t in intra {
            assert_eq!(t.elements(), 3 * 4);
        }
        for t in inter {
            assert_eq!(t.elements(), 4);
        }
    }

    #[test]
    fn cshift_covers_all_destination_rows() {
        // Uneven distribution: 10 rows over 4 PEs along dim 0.
        let g = Geometry::new(vec![BlockDim::new(10, 4)], PeGrid::new([4]));
        for s in [-11i64, -3, -1, 0, 1, 2, 5, 9, 10, 23] {
            let plan = cshift_plan(&g, s, 0, ShiftKind::Circular);
            // Collect destination coverage per PE.
            let mut covered = vec![Vec::new(); 4];
            for a in &plan {
                if let CommAction::Transfer(t) = a {
                    covered[t.dst_pe].push(t.dst_local[0]);
                }
            }
            for pe in 0..4 {
                let ext = g.extents(pe)[0] as i64;
                let mut cells = vec![false; ext as usize];
                for (lo, hi) in &covered[pe] {
                    for i in *lo..=*hi {
                        assert!(!cells[(i - 1) as usize], "overlapping transfer s={s}");
                        cells[(i - 1) as usize] = true;
                    }
                }
                assert!(cells.iter().all(|&c| c), "pe {pe} not covered for s={s}");
            }
        }
    }

    #[test]
    fn cshift_endoff_fills_and_covers() {
        let g = Geometry::new(vec![BlockDim::new(8, 2)], PeGrid::new([2]));
        let plan = cshift_plan(&g, 3, 0, ShiftKind::EndOff(5.0));
        // dst rows 6..8 (global) take the boundary: dst(i) = src(i+3).
        let mut filled = 0i64;
        let mut transferred = 0i64;
        for a in &plan {
            match a {
                CommAction::Fill { local, value, .. } => {
                    assert_eq!(*value, 5.0);
                    filled += local[0].1 - local[0].0 + 1;
                }
                CommAction::Transfer(t) => {
                    transferred += t.dst_local[0].1 - t.dst_local[0].0 + 1;
                }
            }
        }
        assert_eq!(filled, 3);
        assert_eq!(transferred, 5);
    }

    #[test]
    fn cshift_endoff_huge_shift_fills_everything() {
        let g = Geometry::new(vec![BlockDim::new(8, 2)], PeGrid::new([2]));
        let plan = cshift_plan(&g, 8, 0, ShiftKind::EndOff(1.0));
        assert!(plan.iter().all(|a| matches!(a, CommAction::Fill { .. })));
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn cshift_zero_is_pure_intra() {
        let g = geom_2x2_8x8();
        let plan = cshift_plan(&g, 0, 0, ShiftKind::Circular);
        for a in plan {
            match a {
                CommAction::Transfer(t) => assert_eq!(t.src_pe, t.dst_pe),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn cshift_full_cycle_equals_zero_shift() {
        let g = geom_2x2_8x8();
        let a = cshift_plan(&g, 8, 0, ShiftKind::Circular);
        let b = cshift_plan(&g, 0, 0, ShiftKind::Circular);
        assert_eq!(a, b);
    }
}
