//! Execution counters, per PE and aggregated.

/// Counters for one PE. The executors and the machine's data-movement
/// operations increment these; the cost model converts them to modeled time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeStats {
    /// Messages sent to another PE.
    pub msgs_sent: u64,
    /// Messages received from another PE.
    pub msgs_recv: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_recv: u64,
    /// Bytes copied within the PE by the intraprocessor component of full
    /// `CSHIFT`s (the cost the offset-array optimization eliminates).
    pub intra_bytes: u64,
    /// Bytes of local wrap-around halo copies (grid extent 1 along an axis).
    pub wrap_bytes: u64,
    /// Array-element loads executed by subgrid loops.
    pub loads: u64,
    /// Loads issued while the innermost loop did not run over the
    /// storage-contiguous dimension (pay a stride penalty in the model).
    pub strided_loads: u64,
    /// Array-element stores executed by subgrid loops.
    pub stores: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Loop iterations executed (loop overhead proxy).
    pub iters: u64,
    /// Array allocations performed.
    pub allocs: u64,
}

impl PeStats {
    /// Counter deltas since an earlier snapshot. All counters are
    /// monotonically increasing, so this isolates the work done between two
    /// snapshots of the same PE — the split-phase executor uses it to
    /// attribute modeled time to the interior sweep vs the receive drain.
    pub fn delta_since(&self, base: &PeStats) -> PeStats {
        PeStats {
            msgs_sent: self.msgs_sent - base.msgs_sent,
            msgs_recv: self.msgs_recv - base.msgs_recv,
            bytes_sent: self.bytes_sent - base.bytes_sent,
            bytes_recv: self.bytes_recv - base.bytes_recv,
            intra_bytes: self.intra_bytes - base.intra_bytes,
            wrap_bytes: self.wrap_bytes - base.wrap_bytes,
            loads: self.loads - base.loads,
            strided_loads: self.strided_loads - base.strided_loads,
            stores: self.stores - base.stores,
            flops: self.flops - base.flops,
            iters: self.iters - base.iters,
            allocs: self.allocs - base.allocs,
        }
    }

    /// Add another PE's counters into this one.
    pub fn merge(&mut self, other: &PeStats) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.intra_bytes += other.intra_bytes;
        self.wrap_bytes += other.wrap_bytes;
        self.loads += other.loads;
        self.strided_loads += other.strided_loads;
        self.stores += other.stores;
        self.flops += other.flops;
        self.iters += other.iters;
        self.allocs += other.allocs;
    }
}

/// Aggregated statistics across the machine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggStats {
    /// Per-PE counters.
    pub per_pe: Vec<PeStats>,
    /// Peak memory use per PE in bytes.
    pub peak_bytes: Vec<usize>,
    /// Persistent communication schedules compiled (index lists + buffers
    /// precomputed). Machine-wide, incremented once per comm op at plan time.
    pub schedules_built: u64,
    /// Executions of an already-compiled schedule — each one is a shift that
    /// paid zero subgrid math and zero buffer allocation. After `n` steps of
    /// a plan with `c` comm ops, this reads `n * c`.
    pub schedule_reuses: u64,
    /// Loop nests compiled to bytecode kernels, counted per (nest, PE)
    /// pair. Machine-wide, incremented at backend compile time; zero under
    /// the interpreter backend.
    pub kernels_compiled: u64,
    /// Executions of an already-compiled bytecode kernel (one nest sweep on
    /// one PE). Plans compile once and grow only this counter per step.
    pub kernel_execs: u64,
    /// Split-phase exchange windows executed with interior/boundary overlap
    /// (sends posted, interior computed while messages were in flight,
    /// receives drained, boundary strips computed). Machine-wide; zero on
    /// the blocking engines and on the conservative-fallback path.
    pub overlapped_steps: u64,
    /// Points computed in interior regions (before receives were drained)
    /// across all overlapped windows and PEs.
    pub interior_cells: u64,
    /// Points computed in boundary strips (after receives were drained)
    /// across all overlapped windows and PEs.
    pub boundary_cells: u64,
    /// Per-PE modeled receive nanoseconds hidden behind interior compute by
    /// split-phase exchange windows: per window, `min(recv_ns, interior_ns)`
    /// where both terms come from the cost model applied to exact counter
    /// deltas around the interior sweep and the drain. This value is
    /// trace-derived: the overlap engine computes the per-window credit at
    /// the span-recording boundary of the window's drain, accumulates it
    /// here, and (with tracing on) attaches the same number to the drain's
    /// `hpf_trace` span — so `TraceSummary::hidden_comm_ns()` reproduces
    /// this vector exactly and the counter is just the always-on aggregate
    /// view of the span data. Zero on the blocking engines; the per-PE
    /// `PeStats` themselves stay engine-independent. Empty when no machine
    /// has run (e.g. hand-built aggregates).
    pub hidden_comm_ns: Vec<f64>,
    /// Auto-tuner lookups answered from the persistent on-disk tuning
    /// cache (no candidate enumerated or timed). Machine-wide; zero unless
    /// the plan was resolved through `ExecConfig::auto()` / `Tuner::best`.
    pub tune_cache_hits: u64,
    /// Auto-tuner lookups that missed the cache and ran the full
    /// cost-model-pruned candidate search.
    pub tune_cache_misses: u64,
    /// Wall nanoseconds the auto-tuner spent resolving the configuration
    /// (cache probe, candidate enumeration, model pruning, empirical
    /// timing). On a cache hit this is just the probe time.
    pub tune_search_ns: u64,
    /// Halo exchanges the superstep schedule did *not* perform: for each
    /// executed superstep of depth `k`, the `(k-1) * comms_per_step`
    /// exchanges the classic schedule would have issued. Machine-wide;
    /// zero at depth 1 and on non-superstep plans.
    pub exchanges_elided: u64,
    /// Points computed redundantly (outside the owning PE's region) by
    /// trapezoid sub-step sweeps, summed over all PEs and supersteps —
    /// the compute price paid for the elided exchanges.
    pub redundant_cells: u64,
}

impl AggStats {
    /// Sum of all PE counters.
    pub fn total(&self) -> PeStats {
        let mut t = PeStats::default();
        for s in &self.per_pe {
            t.merge(s);
        }
        t
    }

    /// Total messages (each message counted once, on the sending side).
    pub fn total_messages(&self) -> u64 {
        self.per_pe.iter().map(|s| s.msgs_sent).sum()
    }

    /// Total bytes moved between PEs.
    pub fn total_comm_bytes(&self) -> u64 {
        self.per_pe.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total intraprocessor copy bytes.
    pub fn total_intra_bytes(&self) -> u64 {
        self.per_pe.iter().map(|s| s.intra_bytes).sum()
    }

    /// Largest peak memory over PEs.
    pub fn max_peak_bytes(&self) -> usize {
        self.peak_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// The per-PE summary table (`--trace` text output): one row per PE with
/// its message/byte/compute counters and the hidden-communication credit.
/// Rendered through the shared [`hpf_trace::table::TextTable`] helper.
impl std::fmt::Display for AggStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use hpf_trace::{Align, TextTable};
        let mut t = TextTable::new(&[
            ("pe", Align::Left),
            ("msg-s", Align::Right),
            ("msg-r", Align::Right),
            ("KB-sent", Align::Right),
            ("KB-recv", Align::Right),
            ("KB-intra", Align::Right),
            ("loads", Align::Right),
            ("stores", Align::Right),
            ("flops", Align::Right),
            ("hidden-ms", Align::Right),
        ]);
        for (pe, s) in self.per_pe.iter().enumerate() {
            let hidden_ms = self.hidden_comm_ns.get(pe).copied().unwrap_or(0.0) / 1e6;
            t.row([
                pe.to_string(),
                s.msgs_sent.to_string(),
                s.msgs_recv.to_string(),
                format!("{:.1}", s.bytes_sent as f64 / 1024.0),
                format!("{:.1}", s.bytes_recv as f64 / 1024.0),
                format!("{:.1}", s.intra_bytes as f64 / 1024.0),
                s.loads.to_string(),
                s.stores.to_string(),
                s.flops.to_string(),
                format!("{hidden_ms:.3}"),
            ]);
        }
        f.write_str(&t.render())?;
        write!(
            f,
            "schedules: {} built, {} reused | kernels: {} compiled, {} execs | \
             overlap: {} windows, {} interior / {} boundary cells",
            self.schedules_built,
            self.schedule_reuses,
            self.kernels_compiled,
            self.kernel_execs,
            self.overlapped_steps,
            self.interior_cells,
            self.boundary_cells
        )?;
        // Superstep and tune counters join the footer line only when their
        // feature ran, keeping classic output (and its line count) unchanged.
        if self.exchanges_elided + self.redundant_cells > 0 {
            write!(
                f,
                " | superstep: {} exchanges elided, {} redundant cells",
                self.exchanges_elided, self.redundant_cells
            )?;
        }
        if self.tune_cache_hits + self.tune_cache_misses > 0 {
            write!(
                f,
                " | tune: {} hits, {} misses, {:.1} ms search",
                self.tune_cache_hits,
                self.tune_cache_misses,
                self.tune_search_ns as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = PeStats { msgs_sent: 1, bytes_sent: 100, loads: 5, ..Default::default() };
        let b = PeStats { msgs_sent: 2, bytes_sent: 50, flops: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 3);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.loads, 5);
        assert_eq!(a.flops, 7);
    }

    #[test]
    fn aggregate_totals() {
        let agg = AggStats {
            per_pe: vec![
                PeStats { msgs_sent: 2, bytes_sent: 10, intra_bytes: 4, ..Default::default() },
                PeStats { msgs_sent: 1, bytes_sent: 20, intra_bytes: 6, ..Default::default() },
            ],
            peak_bytes: vec![100, 300],
            ..Default::default()
        };
        assert_eq!(agg.total_messages(), 3);
        assert_eq!(agg.total_comm_bytes(), 30);
        assert_eq!(agg.total_intra_bytes(), 10);
        assert_eq!(agg.max_peak_bytes(), 300);
        assert_eq!(agg.total().msgs_sent, 3);
    }

    #[test]
    fn display_renders_one_row_per_pe() {
        let agg = AggStats {
            per_pe: vec![
                PeStats { msgs_sent: 2, bytes_sent: 2048, loads: 7, ..Default::default() },
                PeStats { msgs_recv: 1, bytes_recv: 1024, ..Default::default() },
            ],
            peak_bytes: vec![0, 0],
            hidden_comm_ns: vec![1_500_000.0, 0.0],
            schedules_built: 3,
            ..Default::default()
        };
        let table = agg.to_string();
        assert!(table.contains("hidden-ms"));
        assert!(table.contains("1.500"), "hidden credit in ms: {table}");
        assert!(table.contains("schedules: 3 built"));
        assert_eq!(table.lines().count(), 1 + 2 + 1, "header + 2 PEs + footer");
        assert!(!table.contains("tune:"), "untuned runs keep the old footer");
    }

    #[test]
    fn display_appends_tune_counters_when_tuner_ran() {
        let agg = AggStats {
            per_pe: vec![PeStats::default()],
            peak_bytes: vec![0],
            tune_cache_misses: 1,
            tune_search_ns: 2_500_000,
            ..Default::default()
        };
        let table = agg.to_string();
        assert!(table.contains("tune: 0 hits, 1 misses, 2.5 ms search"), "{table}");
        assert_eq!(table.lines().count(), 1 + 1 + 1, "tune joins the footer line");
    }

    #[test]
    fn display_appends_superstep_counters_when_supersteps_ran() {
        let agg = AggStats {
            per_pe: vec![PeStats::default()],
            peak_bytes: vec![0],
            exchanges_elided: 12,
            redundant_cells: 480,
            ..Default::default()
        };
        let table = agg.to_string();
        assert!(table.contains("superstep: 12 exchanges elided, 480 redundant cells"), "{table}");
        assert_eq!(table.lines().count(), 1 + 1 + 1, "superstep joins the footer line");
    }
}
