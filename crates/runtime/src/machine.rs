//! The machine: PE states, distributed arrays, and data-movement operations.

use crate::cost::CostModel;
use crate::dist::{BlockDim, PeGrid};
use crate::error::RtError;
use crate::schedule::{
    cshift_plan, overlap_shift_plan, CommAction, CompiledComm, CompiledFill, CompiledTransfer,
    Geometry, Transfer,
};
use crate::stats::{AggStats, PeStats};
use crate::subgrid::Subgrid;
use hpf_ir::{ArrayDecl, ArrayId, DimDist, Offsets, Rsd, Section, Shape, ShiftKind};
use hpf_trace::{SpanKind, Trace, TraceConfig, Tracer, Track};

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// PE mesh; rank must match the program's array rank.
    pub grid: PeGrid,
    /// Overlap-area width (ghost layers per side per dimension).
    pub halo: usize,
    /// Optional per-PE memory budget in bytes (Figure 11's 256 MB/PE).
    pub mem_budget: Option<usize>,
    /// Cost model used for modeled time.
    pub cost: CostModel,
    /// Threaded-engine spawn threshold in subgrid points per PE per step
    /// (0 = always spawn). When a plan step computes at most this many
    /// points per PE, the threaded engines degrade to the sequential step —
    /// thread spawn and join overhead dominates such small subgrids.
    pub par_threshold: u64,
}

impl MachineConfig {
    /// Builder entry point: a PE mesh with the defaults every other knob
    /// starts from (overlap width 1, no memory budget, SP-2 cost model).
    ///
    /// ```
    /// use hpf_runtime::{CostModel, MachineConfig};
    /// let cfg = MachineConfig::grid([2, 2]).memory_mb(256).cost(CostModel::sp2());
    /// assert_eq!(cfg.mem_budget, Some(256 << 20));
    /// ```
    pub fn grid(grid: impl Into<Vec<usize>>) -> Self {
        MachineConfig {
            grid: PeGrid::new(grid),
            halo: 1,
            mem_budget: None,
            cost: CostModel::sp2(),
            par_threshold: 0,
        }
    }

    /// The paper's machine: a 4-processor SP-2 arranged 2×2, overlap width 1.
    pub fn sp2_2x2() -> Self {
        Self::grid([2, 2]).cost(CostModel::sp2())
    }

    /// Arbitrary grid with defaults (alias of [`MachineConfig::grid`], kept
    /// for source compatibility).
    pub fn with_grid(grid: impl Into<Vec<usize>>) -> Self {
        Self::grid(grid)
    }

    /// Set the overlap width.
    pub fn halo(mut self, halo: usize) -> Self {
        self.halo = halo;
        self
    }

    /// Set the per-PE memory budget.
    pub fn budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Set the per-PE memory budget in megabytes (Figure 11's 256 MB/PE).
    pub fn memory_mb(self, mb: usize) -> Self {
        self.budget(mb << 20)
    }

    /// Set the cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the threaded-engine spawn threshold (points per PE per step;
    /// 0 disables the degrade-to-sequential path).
    pub fn par_threshold(mut self, points: u64) -> Self {
        self.par_threshold = points;
        self
    }
}

/// Metadata of an allocated distributed array.
#[derive(Clone, Debug)]
pub struct ArrayMeta {
    /// Name (diagnostics).
    pub name: String,
    /// Global shape.
    pub shape: Shape,
    /// Geometry (distribution arithmetic on the PE grid).
    pub geom: Geometry,
}

/// Per-PE mutable state: subgrids, counters, memory accounting.
#[derive(Clone, Debug)]
pub struct PeState {
    /// Linear PE index.
    pub pe: usize,
    /// Subgrids indexed by `ArrayId`.
    pub subgrids: Vec<Option<Subgrid>>,
    /// Execution counters.
    pub stats: PeStats,
    /// Modeled receive nanoseconds hidden behind interior compute by
    /// split-phase exchange windows on this PE (see `AggStats::hidden_comm_ns`).
    /// Kept outside `stats` so per-PE counters stay identical across engines.
    pub overlap_hidden_ns: f64,
    /// Currently allocated bytes.
    pub cur_bytes: usize,
    /// Peak allocated bytes.
    pub peak_bytes: usize,
    /// Span recorder for this PE's timeline ("PE n" track). Single writer:
    /// only the thread currently driving this PE (the sequential engine on
    /// the main thread, or this PE's worker under the threaded engines)
    /// records into it, so tracing needs no locks. Disabled (a no-op)
    /// unless [`Machine::enable_tracing`] was called.
    pub tracer: Tracer,
}

impl PeState {
    /// Borrow a subgrid.
    pub fn subgrid(&self, id: ArrayId) -> &Subgrid {
        self.subgrids
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .unwrap_or_else(|| panic!("array {id:?} not allocated on PE {}", self.pe))
    }

    /// Borrow a subgrid mutably.
    pub fn subgrid_mut(&mut self, id: ArrayId) -> &mut Subgrid {
        let pe = self.pe;
        self.subgrids
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .unwrap_or_else(|| panic!("array {id:?} not allocated on PE {pe}"))
    }
}

/// How to account a data-movement plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveKind {
    /// Full shift: self-transfers are the intraprocessor component.
    FullShift,
    /// Overlap shift: self-transfers are local wrap copies into the halo.
    Overlap,
}

/// The simulated distributed-memory machine (sequential engine; the SPMD
/// threaded engine in `hpf-exec` reuses the same schedules and per-PE state).
#[derive(Clone, Debug)]
pub struct Machine {
    /// Configuration.
    pub cfg: MachineConfig,
    metas: Vec<Option<ArrayMeta>>,
    /// Per-PE state, indexed by linear PE id.
    pub pes: Vec<PeState>,
    /// Persistent schedules compiled so far (machine-wide).
    sched_built: u64,
    /// Executions of already-compiled schedules (machine-wide).
    sched_reuses: u64,
    /// Bytecode kernels compiled so far (machine-wide, per nest × PE).
    kernels_built: u64,
    /// Executions of already-compiled bytecode kernels (machine-wide).
    kernel_execs: u64,
    /// Split-phase windows executed with interior/boundary overlap.
    overlapped_steps: u64,
    /// Points computed in interior regions of overlapped windows.
    interior_cells: u64,
    /// Points computed in boundary strips of overlapped windows.
    boundary_cells: u64,
    /// Auto-tuner cache hits credited to this machine's run.
    tune_hits: u64,
    /// Auto-tuner cache misses (full searches) credited to this run.
    tune_misses: u64,
    /// Wall nanoseconds the auto-tuner spent resolving this run's config.
    tune_search_ns: u64,
    /// Halo exchanges elided by superstep schedules (machine-wide).
    exchanges_elided: u64,
    /// Points redundantly recomputed by trapezoid sub-step sweeps.
    redundant_cells: u64,
    /// Span recorder for driver-side work (schedule builds, kernel
    /// compiles, step envelopes) — the "driver" track.
    driver_tracer: Tracer,
}

impl Machine {
    /// Build a machine with no arrays allocated.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.grid.num_pes();
        let pes = (0..n)
            .map(|pe| PeState {
                pe,
                subgrids: Vec::new(),
                stats: PeStats::default(),
                overlap_hidden_ns: 0.0,
                cur_bytes: 0,
                peak_bytes: 0,
                tracer: Tracer::disabled(),
            })
            .collect();
        Machine {
            cfg,
            metas: Vec::new(),
            pes,
            sched_built: 0,
            sched_reuses: 0,
            kernels_built: 0,
            kernel_execs: 0,
            overlapped_steps: 0,
            interior_cells: 0,
            boundary_cells: 0,
            tune_hits: 0,
            tune_misses: 0,
            tune_search_ns: 0,
            exchanges_elided: 0,
            redundant_cells: 0,
            driver_tracer: Tracer::disabled(),
        }
    }

    /// Turn on span recording: the driver tracer and every PE's tracer get
    /// a freshly preallocated ring. Until this is called, every tracer is a
    /// no-op and instrumented code paths cost a single branch.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.driver_tracer.enable(cfg);
        for p in &mut self.pes {
            p.tracer.enable(cfg);
        }
    }

    /// Whether span recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.driver_tracer.is_enabled()
    }

    /// The driver-side tracer (schedule builds, kernel compiles, step
    /// envelopes). Executors above this crate record driver-side spans
    /// through this.
    pub fn driver_tracer(&mut self) -> &mut Tracer {
        &mut self.driver_tracer
    }

    /// Collect everything recorded so far into a [`Trace`] — the "driver"
    /// track followed by one track per PE — and reset the rings (tracers
    /// stay enabled, so stepping on records a fresh timeline).
    pub fn take_trace(&mut self) -> Trace {
        let mut tracks = Vec::with_capacity(self.pes.len() + 1);
        let (events, dropped) = self.driver_tracer.drain();
        tracks.push(Track { name: "driver".to_string(), events, dropped });
        for p in &mut self.pes {
            let (events, dropped) = p.tracer.drain();
            tracks.push(Track { name: format!("PE {}", p.pe), events, dropped });
        }
        Trace { tracks }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.cfg.grid.num_pes()
    }

    /// Geometry for a declaration on this machine.
    pub fn geometry_for(&self, decl: &ArrayDecl) -> Result<Geometry, RtError> {
        if decl.rank() != self.cfg.grid.rank() {
            return Err(RtError::RankMismatch {
                machine: self.cfg.grid.rank(),
                array: decl.rank(),
            });
        }
        let mut dims = Vec::with_capacity(decl.rank());
        for d in 0..decl.rank() {
            let p = match decl.dist.dim(d) {
                DimDist::Block => self.cfg.grid.dims[d],
                DimDist::Collapsed => {
                    if self.cfg.grid.dims[d] != 1 {
                        return Err(RtError::BadDistribution(format!(
                            "array {}: collapsed dim {} on a grid axis of {} PEs",
                            decl.name,
                            d + 1,
                            self.cfg.grid.dims[d]
                        )));
                    }
                    1
                }
            };
            dims.push(BlockDim::new(decl.shape.extent(d), p));
        }
        Ok(Geometry::new(dims, self.cfg.grid.clone()))
    }

    /// Allocate a distributed array. All-or-nothing: fails without side
    /// effects when any PE would exceed its memory budget.
    pub fn alloc(&mut self, id: ArrayId, decl: &ArrayDecl) -> Result<(), RtError> {
        let idx = id.0 as usize;
        if self.metas.len() > idx && self.metas[idx].is_some() {
            return Err(RtError::AlreadyAllocated(decl.name.clone()));
        }
        let geom = self.geometry_for(decl)?;
        // The halo must fit every PE's block: a ghost region deeper than
        // the smallest owned extent along a dimension cannot be filled by
        // one neighbor exchange (the data lives two or more PEs away), so
        // deep-halo (superstep) configurations that overshoot the block
        // size fail here instead of silently mis-filling ghost cells.
        for d in 0..geom.dims.len() {
            let min_ext = (0..self.num_pes())
                .map(|pe| {
                    let (lo, hi) = geom.owned(pe)[d];
                    (hi - lo + 1).max(0) as usize
                })
                .filter(|&e| e > 0)
                .min();
            if let Some(extent) = min_ext {
                if self.cfg.halo > extent {
                    return Err(RtError::HaloTooDeep { halo: self.cfg.halo, dim: d, extent });
                }
            }
        }
        // Pre-check budgets.
        if let Some(budget) = self.cfg.mem_budget {
            for pe in 0..self.num_pes() {
                let owned = Section::new(geom.owned(pe));
                let sub = Subgrid::new(owned, self.cfg.halo);
                let needed = self.pes[pe].cur_bytes + sub.bytes();
                if needed > budget {
                    return Err(RtError::MemoryExhausted { pe, needed, budget });
                }
            }
        }
        if self.metas.len() <= idx {
            self.metas.resize(idx + 1, None);
        }
        for pe in 0..self.num_pes() {
            let owned = Section::new(geom.owned(pe));
            let sub = Subgrid::new(owned, self.cfg.halo);
            let st = &mut self.pes[pe];
            st.cur_bytes += sub.bytes();
            st.peak_bytes = st.peak_bytes.max(st.cur_bytes);
            st.stats.allocs += 1;
            if st.subgrids.len() <= idx {
                st.subgrids.resize(idx + 1, None);
            }
            st.subgrids[idx] = Some(sub);
        }
        self.metas[idx] =
            Some(ArrayMeta { name: decl.name.clone(), shape: decl.shape.clone(), geom });
        Ok(())
    }

    /// Free a distributed array.
    pub fn free(&mut self, id: ArrayId) {
        let idx = id.0 as usize;
        if self.metas.get(idx).is_none_or(|m| m.is_none()) {
            return;
        }
        for st in &mut self.pes {
            if let Some(sub) = st.subgrids[idx].take() {
                st.cur_bytes -= sub.bytes();
            }
        }
        self.metas[idx] = None;
    }

    /// True when the array is allocated.
    pub fn is_allocated(&self, id: ArrayId) -> bool {
        self.metas.get(id.0 as usize).is_some_and(|m| m.is_some())
    }

    /// Snapshot of all array metadata (indexed by `ArrayId`), for executors
    /// that need geometry while PE states are mutably borrowed by threads.
    pub fn metas_snapshot(&self) -> Vec<Option<ArrayMeta>> {
        self.metas.clone()
    }

    /// Metadata of an allocated array.
    pub fn meta(&self, id: ArrayId) -> &ArrayMeta {
        self.metas[id.0 as usize].as_ref().unwrap_or_else(|| panic!("array {id:?} not allocated"))
    }

    /// Fill every element from a function of the global coordinates.
    pub fn fill(&mut self, id: ArrayId, f: impl Fn(&[i64]) -> f64) {
        let geom = self.meta(id).geom.clone();
        for pe in 0..self.num_pes() {
            let owned = Section::new(geom.owned(pe));
            if owned.is_empty() {
                continue;
            }
            let sub = self.pes[pe].subgrid_mut(id);
            for p in owned.points() {
                sub.set_global(&p, f(&p));
            }
        }
    }

    /// Read one element by global coordinates.
    pub fn get(&self, id: ArrayId, point: &[i64]) -> f64 {
        let geom = &self.meta(id).geom;
        let pe = self.owner_pe(geom, point);
        self.pes[pe].subgrid(id).get_global(point)
    }

    /// Write one element by global coordinates.
    pub fn set(&mut self, id: ArrayId, point: &[i64], v: f64) {
        let geom = self.meta(id).geom.clone();
        let pe = self.owner_pe(&geom, point);
        self.pes[pe].subgrid_mut(id).set_global(point, v);
    }

    fn owner_pe(&self, geom: &Geometry, point: &[i64]) -> usize {
        let coords: Vec<usize> = point
            .iter()
            .zip(&geom.dims)
            .map(|(&i, b)| b.owner(i).expect("point out of bounds"))
            .collect();
        geom.grid.linear(&coords)
    }

    /// Gather an array into a dense global row-major buffer.
    pub fn gather(&self, id: ArrayId) -> Vec<f64> {
        let meta = self.meta(id);
        let shape = meta.shape.clone();
        let mut out = vec![0.0; shape.len()];
        let full = Section::full(&shape);
        let strides = row_major_strides(&shape);
        for pe in 0..self.num_pes() {
            let owned = Section::new(meta.geom.owned(pe));
            let owned = owned.intersect(&full);
            if owned.is_empty() {
                continue;
            }
            let sub = self.pes[pe].subgrid(id);
            for p in owned.points() {
                let mut idx = 0usize;
                for d in 0..p.len() {
                    idx += (p[d] - 1) as usize * strides[d];
                }
                out[idx] = sub.get_global(&p);
            }
        }
        out
    }

    /// Scatter a dense global row-major buffer into a distributed array.
    pub fn scatter(&mut self, id: ArrayId, data: &[f64]) {
        let meta = self.meta(id).clone();
        assert_eq!(data.len(), meta.shape.len());
        let strides = row_major_strides(&meta.shape);
        for pe in 0..self.num_pes() {
            let owned = Section::new(meta.geom.owned(pe));
            if owned.is_empty() {
                continue;
            }
            let sub = self.pes[pe].subgrid_mut(id);
            for p in owned.points() {
                let mut idx = 0usize;
                for d in 0..p.len() {
                    idx += (p[d] - 1) as usize * strides[d];
                }
                sub.set_global(&p, data[idx]);
            }
        }
    }

    /// Overwrite the ghost cells of every allocated subgrid with `value`,
    /// leaving owned elements untouched. Test instrumentation for the
    /// overlap-coverage invariant: poison the halos, run one communication +
    /// compute step, and any ghost element the schedules failed to fill
    /// before a loop nest read it shows up as `value` contaminating the
    /// output.
    pub fn poison_halos(&mut self, value: f64) {
        for st in &mut self.pes {
            for sub in st.subgrids.iter_mut().flatten() {
                sub.poison_halo(value);
            }
        }
    }

    /// Apply a communication plan moving data from `src` into `dst` (which
    /// may be the same array, as in overlap shifts), updating counters.
    pub fn apply_plan(&mut self, dst: ArrayId, src: ArrayId, plan: &[CommAction], kind: MoveKind) {
        for action in plan {
            match action {
                CommAction::Transfer(t) => self.apply_transfer(dst, src, t, kind),
                CommAction::Fill { pe, local, value } => {
                    self.pes[*pe].subgrid_mut(dst).fill_region(local, *value);
                }
            }
        }
    }

    fn apply_transfer(&mut self, dst: ArrayId, src: ArrayId, t: &Transfer, kind: MoveKind) {
        let buf = self.pes[t.src_pe].subgrid(src).read_region(&t.src_local);
        let bytes = (buf.len() * std::mem::size_of::<f64>()) as u64;
        self.pes[t.dst_pe].subgrid_mut(dst).write_region(&t.dst_local, &buf);
        if t.src_pe == t.dst_pe {
            match kind {
                MoveKind::FullShift => self.pes[t.src_pe].stats.intra_bytes += bytes,
                MoveKind::Overlap => self.pes[t.src_pe].stats.wrap_bytes += bytes,
            }
        } else {
            let s = &mut self.pes[t.src_pe].stats;
            s.msgs_sent += 1;
            s.bytes_sent += bytes;
            let r = &mut self.pes[t.dst_pe].stats;
            r.msgs_recv += 1;
            r.bytes_recv += bytes;
        }
    }

    /// Compile a communication plan against the allocated subgrids into a
    /// persistent schedule: every region is resolved into flat pack/unpack
    /// index lists and each transfer gets a pooled message buffer. Executing
    /// the result via [`Machine::apply_compiled`] performs zero subgrid
    /// coordinate math and zero allocation per step.
    pub fn compile_comm(
        &mut self,
        dst: ArrayId,
        src: ArrayId,
        plan: Vec<CommAction>,
        kind: MoveKind,
    ) -> CompiledComm {
        let t0 = self.driver_tracer.now();
        let mut transfers = Vec::new();
        let mut fills = Vec::new();
        for action in &plan {
            match action {
                CommAction::Transfer(t) => {
                    let src_idx = self.pes[t.src_pe].subgrid(src).region_indices(&t.src_local);
                    let dst_idx = self.pes[t.dst_pe].subgrid(dst).region_indices(&t.dst_local);
                    debug_assert_eq!(src_idx.len(), dst_idx.len());
                    let buf = vec![0.0; src_idx.len()];
                    transfers.push(CompiledTransfer {
                        src_pe: t.src_pe,
                        dst_pe: t.dst_pe,
                        src_idx,
                        dst_idx,
                        buf,
                    });
                }
                CommAction::Fill { pe, local, value } => fills.push(CompiledFill {
                    pe: *pe,
                    idx: self.pes[*pe].subgrid(dst).region_indices(local),
                    value: *value,
                }),
            }
        }
        self.sched_built += 1;
        self.driver_tracer.record(SpanKind::ScheduleBuild, t0);
        CompiledComm { dst, src, kind, transfers, fills, actions: plan }
    }

    /// Execute a persistent schedule: pack each transfer through its
    /// precomputed indices into its pooled buffer, deliver, unpack, apply
    /// fills. Counter accounting is identical to [`Machine::apply_plan`], so
    /// a compiled schedule and its uncompiled plan are indistinguishable in
    /// `AggStats` apart from `schedule_reuses`.
    pub fn apply_compiled(&mut self, sched: &mut CompiledComm) {
        for t in &mut sched.transfers {
            // Pack (sender side).
            {
                let t0 = self.pes[t.src_pe].tracer.now();
                let raw = self.pes[t.src_pe].subgrid(sched.src).raw();
                for (slot, &i) in t.buf.iter_mut().zip(&t.src_idx) {
                    *slot = raw[i];
                }
                self.pes[t.src_pe].tracer.record(SpanKind::Pack, t0);
            }
            // Unpack (receiver side).
            {
                let t0 = self.pes[t.dst_pe].tracer.now();
                let raw = self.pes[t.dst_pe].subgrid_mut(sched.dst).raw_mut();
                for (&i, &v) in t.dst_idx.iter().zip(&t.buf) {
                    raw[i] = v;
                }
                self.pes[t.dst_pe].tracer.record(SpanKind::Unpack, t0);
            }
            let bytes = (t.buf.len() * std::mem::size_of::<f64>()) as u64;
            if t.src_pe == t.dst_pe {
                match sched.kind {
                    MoveKind::FullShift => self.pes[t.src_pe].stats.intra_bytes += bytes,
                    MoveKind::Overlap => self.pes[t.src_pe].stats.wrap_bytes += bytes,
                }
            } else {
                let s = &mut self.pes[t.src_pe].stats;
                s.msgs_sent += 1;
                s.bytes_sent += bytes;
                let r = &mut self.pes[t.dst_pe].stats;
                r.msgs_recv += 1;
                r.bytes_recv += bytes;
            }
        }
        for f in &sched.fills {
            let raw = self.pes[f.pe].subgrid_mut(sched.dst).raw_mut();
            for &i in &f.idx {
                raw[i] = f.value;
            }
        }
        self.sched_reuses += 1;
    }

    /// Record schedule executions performed outside [`Machine::apply_compiled`]
    /// (the SPMD engine delivers messages on worker threads but reuses the
    /// same precompiled plans; its driver credits the reuses here so both
    /// engines report identical counters).
    pub fn note_schedule_reuses(&mut self, n: u64) {
        self.sched_reuses += n;
    }

    /// Record bytecode-kernel compilations performed by a codegen backend
    /// (counted per nest × PE; the kernels themselves live in `hpf-exec`).
    pub fn note_kernels_compiled(&mut self, n: u64) {
        self.kernels_built += n;
    }

    /// Record executions of already-compiled bytecode kernels (one nest
    /// sweep on one PE each). The threaded engine runs kernels on worker
    /// threads and credits the executions here, like schedule reuses.
    pub fn note_kernel_execs(&mut self, n: u64) {
        self.kernel_execs += n;
    }

    /// Record split-phase overlap work performed by the overlapped engine:
    /// `windows` exchange windows ran with sends posted before the interior
    /// sweep, computing `interior` points while messages were in flight and
    /// `boundary` points after the receives drained. Credited once per step
    /// after the worker join, like schedule reuses.
    pub fn note_overlap(&mut self, windows: u64, interior: u64, boundary: u64) {
        self.overlapped_steps += windows;
        self.interior_cells += interior;
        self.boundary_cells += boundary;
    }

    /// Record superstep work performed by the executors: per executed
    /// superstep of depth `k`, the `(k-1) * comms` halo exchanges the
    /// classic schedule would have issued but the deep-halo schedule did
    /// not, and the points the trapezoid sub-step sweeps recomputed
    /// redundantly (outside the owning PE's region). Credited by the plan
    /// driver after the step, like [`Machine::note_overlap`].
    pub fn note_superstep(&mut self, exchanges_elided: u64, redundant_cells: u64) {
        self.exchanges_elided += exchanges_elided;
        self.redundant_cells += redundant_cells;
    }

    /// Record an auto-tuner resolution against this machine: how the
    /// configuration lookup went (cache `hits`/`misses`) and the wall
    /// nanoseconds the search took. Called by the planning layer after it
    /// resolves `ExecConfig::auto()` through `hpf-tune`, so the cost of
    /// choosing the configuration shows up in [`AggStats`] next to the
    /// cost of running it.
    pub fn note_tune(&mut self, hits: u64, misses: u64, search_ns: u64) {
        self.tune_hits += hits;
        self.tune_misses += misses;
        self.tune_search_ns += search_ns;
    }

    /// Swap the storage of two identically-distributed arrays on every PE —
    /// the zero-copy double-buffer flip of Jacobi-style time steps. Panics if
    /// either array is unallocated or their geometries differ.
    pub fn swap_subgrids(&mut self, a: ArrayId, b: ArrayId) {
        if a == b {
            return;
        }
        assert_eq!(
            self.meta(a).geom,
            self.meta(b).geom,
            "swap_subgrids: {} and {} have different distributions",
            self.meta(a).name,
            self.meta(b).name
        );
        let (ia, ib) = (a.0 as usize, b.0 as usize);
        for st in &mut self.pes {
            st.subgrids.swap(ia, ib);
        }
    }

    /// Full `DST = CSHIFT(SRC, SHIFT=s, DIM=d)` (or `EOSHIFT`): both the
    /// interprocessor and the intraprocessor component (paper §2.2).
    pub fn cshift(
        &mut self,
        dst: ArrayId,
        src: ArrayId,
        shift: i64,
        dim: usize,
        kind: ShiftKind,
    ) -> Result<(), RtError> {
        let geom = self.meta(src).geom.clone();
        let plan = cshift_plan(&geom, shift, dim, kind);
        self.apply_plan(dst, src, &plan, MoveKind::FullShift);
        Ok(())
    }

    /// `CALL OVERLAP_SHIFT(A, SHIFT=s, DIM=d [, rsd])`: interprocessor
    /// movement only, into the overlap areas.
    pub fn overlap_shift(
        &mut self,
        id: ArrayId,
        shift: i64,
        dim: usize,
        rsd: Option<&Rsd>,
        kind: ShiftKind,
    ) -> Result<(), RtError> {
        let geom = self.meta(id).geom.clone();
        let plan = overlap_shift_plan(&geom, shift, dim, rsd, kind, self.cfg.halo)?;
        self.apply_plan(id, id, &plan, MoveKind::Overlap);
        Ok(())
    }

    /// Whole-array copy `DST = SRC<offsets>`; purely local (reads halo cells
    /// for non-zero offsets). Counts as a subgrid loop.
    pub fn copy_offset(&mut self, dst: ArrayId, src: ArrayId, offsets: &Offsets) {
        for pe in 0..self.num_pes() {
            let sub_src = match &self.pes[pe].subgrids[src.0 as usize] {
                Some(s) => s.clone(),
                None => panic!("src not allocated"),
            };
            if sub_src.is_empty() {
                continue;
            }
            let ext = sub_src.ext.clone();
            let st = &mut self.pes[pe];
            let sub_dst = st.subgrid_mut(dst);
            let ranges: Vec<(i64, i64)> = ext.iter().map(|&e| (1, e as i64)).collect();
            let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
            let mut n = 0u64;
            loop {
                let from: Vec<i64> = cur.iter().zip(&offsets.0).map(|(&l, &o)| l + o).collect();
                sub_dst.set(&cur, sub_src.get(&from));
                n += 1;
                let mut done = true;
                for d in (0..cur.len()).rev() {
                    cur[d] += 1;
                    if cur[d] <= ranges[d].1 {
                        done = false;
                        break;
                    }
                    cur[d] = ranges[d].0;
                }
                if done {
                    break;
                }
            }
            st.stats.loads += n;
            st.stats.stores += n;
            st.stats.iters += n;
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> AggStats {
        AggStats {
            per_pe: self.pes.iter().map(|p| p.stats).collect(),
            peak_bytes: self.pes.iter().map(|p| p.peak_bytes).collect(),
            schedules_built: self.sched_built,
            schedule_reuses: self.sched_reuses,
            kernels_compiled: self.kernels_built,
            kernel_execs: self.kernel_execs,
            overlapped_steps: self.overlapped_steps,
            interior_cells: self.interior_cells,
            boundary_cells: self.boundary_cells,
            hidden_comm_ns: self.pes.iter().map(|p| p.overlap_hidden_ns).collect(),
            tune_cache_hits: self.tune_hits,
            tune_cache_misses: self.tune_misses,
            tune_search_ns: self.tune_search_ns,
            exchanges_elided: self.exchanges_elided,
            redundant_cells: self.redundant_cells,
        }
    }

    /// Reset all counters (memory peaks and schedule counters included).
    pub fn reset_stats(&mut self) {
        for p in &mut self.pes {
            p.stats = PeStats::default();
            p.overlap_hidden_ns = 0.0;
            p.peak_bytes = p.cur_bytes;
        }
        self.sched_built = 0;
        self.sched_reuses = 0;
        self.kernels_built = 0;
        self.kernel_execs = 0;
        self.overlapped_steps = 0;
        self.interior_cells = 0;
        self.boundary_cells = 0;
        self.tune_hits = 0;
        self.tune_misses = 0;
        self.tune_search_ns = 0;
        self.exchanges_elided = 0;
        self.redundant_cells = 0;
    }

    /// Modeled execution time of the counters so far, in milliseconds.
    pub fn modeled_time_ms(&self) -> f64 {
        self.cfg.cost.modeled_time_ms(&self.stats())
    }
}

/// Row-major strides of a shape.
pub fn row_major_strides(shape: &Shape) -> Vec<usize> {
    let r = shape.rank();
    let mut s = vec![1usize; r];
    for d in (0..r.saturating_sub(1)).rev() {
        s[d] = s[d + 1] * shape.extent(d + 1);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::Distribution;

    fn decl(name: &str, n: usize) -> ArrayDecl {
        ArrayDecl::user(name, Shape::new([n, n]), Distribution::block(2))
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::sp2_2x2())
    }

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);

    #[test]
    fn alloc_free_accounting() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        assert!(m.is_allocated(U));
        // 8x8 over 2x2: subgrid 4x4 halo 1 -> 6x6 = 36 elems = 288 bytes.
        assert_eq!(m.pes[0].cur_bytes, 288);
        m.alloc(T, &decl("T", 8)).unwrap();
        assert_eq!(m.pes[0].cur_bytes, 576);
        assert_eq!(m.pes[0].peak_bytes, 576);
        m.free(U);
        assert!(!m.is_allocated(U));
        assert_eq!(m.pes[0].cur_bytes, 288);
        assert_eq!(m.pes[0].peak_bytes, 576, "peak persists");
        assert_eq!(m.stats().per_pe[0].allocs, 2);
    }

    #[test]
    fn double_alloc_fails() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        assert!(matches!(m.alloc(U, &decl("U", 8)), Err(RtError::AlreadyAllocated(_))));
    }

    #[test]
    fn budget_exhaustion() {
        let mut m = Machine::new(MachineConfig::sp2_2x2().budget(500));
        m.alloc(U, &decl("U", 8)).unwrap(); // 288 bytes/PE
        let err = m.alloc(T, &decl("T", 8)).unwrap_err();
        assert!(matches!(err, RtError::MemoryExhausted { needed: 576, budget: 500, .. }));
        // All-or-nothing: T not partially allocated.
        assert!(!m.is_allocated(T));
        assert_eq!(m.pes[0].cur_bytes, 288);
    }

    #[test]
    fn halo_deeper_than_block_extent_is_rejected() {
        // 8x8 over 2x2: block extent 4. A depth-4 halo still fits (each
        // ghost layer is fillable from the one adjacent neighbor); depth 5
        // would need data from two PEs away and is rejected at alloc time.
        let mut ok = Machine::new(MachineConfig::sp2_2x2().halo(4));
        ok.alloc(U, &decl("U", 8)).unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2().halo(5));
        let err = m.alloc(U, &decl("U", 8)).unwrap_err();
        assert_eq!(err, RtError::HaloTooDeep { halo: 5, dim: 0, extent: 4 });
        assert!(!m.is_allocated(U), "rejected alloc leaves no state behind");
        // Uneven blocks: 5 over 4 PEs gives extents 2,2,1,0 -> min
        // non-empty extent 1, so a depth-2 halo cannot be filled there.
        let mut u = Machine::new(MachineConfig::grid([4]).halo(2));
        let d1 = ArrayDecl::user("V", Shape::new([5]), Distribution::block(1));
        let err = u.alloc(U, &d1).unwrap_err();
        assert_eq!(err, RtError::HaloTooDeep { halo: 2, dim: 0, extent: 1 });
    }

    #[test]
    fn note_superstep_accumulates_and_resets() {
        let mut m = machine();
        m.note_superstep(6, 240);
        m.note_superstep(6, 240);
        let agg = m.stats();
        assert_eq!(agg.exchanges_elided, 12);
        assert_eq!(agg.redundant_cells, 480);
        m.reset_stats();
        assert_eq!(m.stats().exchanges_elided, 0);
        assert_eq!(m.stats().redundant_cells, 0);
    }

    #[test]
    fn rank_and_distribution_validation() {
        let mut m = machine();
        let bad_rank = ArrayDecl::user("A", Shape::new([8]), Distribution::block(1));
        assert!(matches!(m.alloc(U, &bad_rank), Err(RtError::RankMismatch { .. })));
        let bad_dist = ArrayDecl::user(
            "B",
            Shape::new([8, 8]),
            Distribution(vec![DimDist::Block, DimDist::Collapsed]),
        );
        assert!(matches!(m.alloc(U, &bad_dist), Err(RtError::BadDistribution(_))));
        // (BLOCK,*) works on a (4,1) grid.
        let mut m2 = Machine::new(MachineConfig::with_grid([4, 1]));
        assert!(m2.alloc(U, &bad_dist).is_ok());
    }

    #[test]
    fn fill_get_set_gather_scatter() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.fill(U, |p| (p[0] * 10 + p[1]) as f64);
        assert_eq!(m.get(U, &[3, 7]), 37.0);
        m.set(U, &[3, 7], -1.0);
        assert_eq!(m.get(U, &[3, 7]), -1.0);
        let g = m.gather(U);
        assert_eq!(g.len(), 64);
        assert_eq!(g[(3 - 1) * 8 + (7 - 1)], -1.0);
        assert_eq!(g[0], 11.0);
        let mut m2 = machine();
        m2.alloc(T, &decl("T", 8)).unwrap();
        // T has id 1; alloc only T.
        m2.scatter(T, &g);
        assert_eq!(m2.get(T, &[3, 7]), -1.0);
    }

    #[test]
    fn cshift_matches_global_semantics() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        for (s, d) in [(1i64, 0usize), (-1, 0), (3, 1), (-5, 1), (8, 0)] {
            m.cshift(T, U, s, d, ShiftKind::Circular).unwrap();
            for p in Section::new([(1, 8), (1, 8)]).points() {
                let mut q = p.clone();
                q[d] = (q[d] - 1 + s).rem_euclid(8) + 1;
                assert_eq!(m.get(T, &p), m.get(U, &q), "cshift s={s} d={d} at {p:?}");
            }
        }
    }

    #[test]
    fn eoshift_matches_global_semantics() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m.cshift(T, U, 3, 1, ShiftKind::EndOff(-7.0)).unwrap();
        for p in Section::new([(1, 8), (1, 8)]).points() {
            let j = p[1] + 3;
            let want = if (1..=8).contains(&j) { m.get(U, &[p[0], j]) } else { -7.0 };
            assert_eq!(m.get(T, &p), want, "at {p:?}");
        }
    }

    #[test]
    fn cshift_counts_messages_and_intra() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.reset_stats();
        m.cshift(T, U, 1, 0, ShiftKind::Circular).unwrap();
        let agg = m.stats();
        // Each PE sends one 4-element row: 4 messages, 32 bytes each.
        assert_eq!(agg.total_messages(), 4);
        assert_eq!(agg.total_comm_bytes(), 4 * 4 * 8);
        // Each PE copies 3 rows of 4 locally.
        assert_eq!(agg.total_intra_bytes(), 4 * 3 * 4 * 8);
    }

    #[test]
    fn overlap_shift_fills_halo_and_counts() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m.reset_stats();
        m.overlap_shift(U, 1, 0, None, ShiftKind::Circular).unwrap();
        // PE 0 owns (1:4,1:4); its dim-0 high ghost row should now hold
        // global row 5 (owned by PE 2).
        let sub = m.pes[0].subgrid(U);
        for j in 1..=4i64 {
            assert_eq!(sub.get(&[5, j]), (500 + j) as f64);
        }
        let agg = m.stats();
        assert_eq!(agg.total_messages(), 4);
        assert_eq!(agg.total_intra_bytes(), 0, "no intraprocessor movement");
    }

    #[test]
    fn overlap_shift_wraps_at_boundary() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m.overlap_shift(U, 1, 0, None, ShiftKind::Circular).unwrap();
        // PE 2 owns (5:8, 1:4); its high ghost should hold global row 1.
        let sub = m.pes[2].subgrid(U);
        for j in 1..=4i64 {
            assert_eq!(sub.get(&[5, j]), (100 + j) as f64);
        }
    }

    #[test]
    fn overlap_shift_endoff_boundary_fill() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.fill(U, |_| 1.0);
        m.overlap_shift(U, -1, 1, None, ShiftKind::EndOff(42.0)).unwrap();
        // PE 0 owns (1:4,1:4) and is at the low edge of dim 1.
        let sub = m.pes[0].subgrid(U);
        for i in 1..=4i64 {
            assert_eq!(sub.get(&[i, 0]), 42.0);
        }
        // PE 1 owns (1:4,5:8): interior edge, receives data.
        let sub1 = m.pes[1].subgrid(U);
        for i in 1..=4i64 {
            assert_eq!(sub1.get(&[i, 0]), 1.0);
        }
    }

    #[test]
    fn copy_offset_reads_halo() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m.overlap_shift(U, 1, 0, None, ShiftKind::Circular).unwrap();
        m.copy_offset(T, U, &Offsets::new([1, 0]));
        // T(i,j) = U(i+1,j) with circular wrap via the halo.
        assert_eq!(m.get(T, &[4, 2]), 502.0);
        assert_eq!(m.get(T, &[8, 3]), 103.0); // wraps to row 1
        let agg = m.stats();
        assert!(agg.total().loads >= 64);
    }

    #[test]
    fn modeled_time_positive_after_comm() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.reset_stats();
        assert_eq!(m.modeled_time_ms(), 0.0);
        m.cshift(T, U, 1, 0, ShiftKind::Circular).unwrap();
        assert!(m.modeled_time_ms() > 0.0);
    }

    #[test]
    fn shift_too_wide_reports_error() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        let err = m.overlap_shift(U, 2, 0, None, ShiftKind::Circular).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }

    #[test]
    fn compiled_schedule_matches_apply_plan() {
        use crate::schedule::cshift_plan;
        // Uncompiled path.
        let mut m1 = machine();
        m1.alloc(U, &decl("U", 8)).unwrap();
        m1.alloc(T, &decl("T", 8)).unwrap();
        m1.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m1.reset_stats();
        m1.cshift(T, U, 1, 0, ShiftKind::Circular).unwrap();
        // Compiled path.
        let mut m2 = machine();
        m2.alloc(U, &decl("U", 8)).unwrap();
        m2.alloc(T, &decl("T", 8)).unwrap();
        m2.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m2.reset_stats();
        let plan = cshift_plan(&m2.meta(U).geom.clone(), 1, 0, ShiftKind::Circular);
        let mut sched = m2.compile_comm(T, U, plan, MoveKind::FullShift);
        m2.apply_compiled(&mut sched);
        assert_eq!(m1.gather(T), m2.gather(T));
        // Identical per-PE counters; only the schedule counters differ.
        assert_eq!(m1.stats().per_pe, m2.stats().per_pe);
        assert_eq!(m2.stats().schedules_built, 1);
        assert_eq!(m2.stats().schedule_reuses, 1);
        assert_eq!(m1.stats().schedules_built, 0);
    }

    #[test]
    fn compiled_overlap_with_fills_matches() {
        use crate::schedule::overlap_shift_plan;
        let mut m1 = machine();
        m1.alloc(U, &decl("U", 8)).unwrap();
        m1.fill(U, |p| (p[0] + p[1]) as f64);
        m1.overlap_shift(U, -1, 1, None, ShiftKind::EndOff(42.0)).unwrap();
        let mut m2 = machine();
        m2.alloc(U, &decl("U", 8)).unwrap();
        m2.fill(U, |p| (p[0] + p[1]) as f64);
        let plan = overlap_shift_plan(
            &m2.meta(U).geom.clone(),
            -1,
            1,
            None,
            ShiftKind::EndOff(42.0),
            m2.cfg.halo,
        )
        .unwrap();
        let mut sched = m2.compile_comm(U, U, plan, MoveKind::Overlap);
        m2.apply_compiled(&mut sched);
        // Compare full subgrid storage (halo included) on every PE.
        for pe in 0..4 {
            assert_eq!(m1.pes[pe].subgrid(U).raw(), m2.pes[pe].subgrid(U).raw());
        }
        assert_eq!(m1.stats().per_pe, m2.stats().per_pe);
    }

    #[test]
    fn compiled_schedule_reuse_counts_and_pools() {
        use crate::schedule::cshift_plan;
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.fill(U, |p| (p[0] * 10 + p[1]) as f64);
        m.reset_stats();
        let plan = cshift_plan(&m.meta(U).geom.clone(), 1, 0, ShiftKind::Circular);
        let mut sched = m.compile_comm(T, U, plan, MoveKind::FullShift);
        let pooled = sched.pooled_bytes();
        assert!(pooled > 0);
        for _ in 0..10 {
            m.apply_compiled(&mut sched);
        }
        // Built once, reused ten times; buffers never grew.
        assert_eq!(m.stats().schedules_built, 1);
        assert_eq!(m.stats().schedule_reuses, 10);
        assert_eq!(sched.pooled_bytes(), pooled);
        // Ten executions counted like ten uncompiled shifts.
        assert_eq!(m.stats().total_messages(), 10 * 4);
    }

    #[test]
    fn swap_subgrids_flips_storage() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 8)).unwrap();
        m.fill(U, |_| 1.0);
        m.fill(T, |_| 2.0);
        m.swap_subgrids(U, T);
        assert_eq!(m.get(U, &[1, 1]), 2.0);
        assert_eq!(m.get(T, &[1, 1]), 1.0);
        m.swap_subgrids(U, U); // no-op
        assert_eq!(m.get(U, &[1, 1]), 2.0);
    }

    #[test]
    #[should_panic(expected = "different distributions")]
    fn swap_subgrids_rejects_mismatched_geometry() {
        let mut m = machine();
        m.alloc(U, &decl("U", 8)).unwrap();
        m.alloc(T, &decl("T", 12)).unwrap();
        m.swap_subgrids(U, T);
    }

    #[test]
    fn memory_mb_and_cost_builder() {
        let cfg = MachineConfig::grid([4, 1]).memory_mb(1).cost(CostModel::compute_only());
        assert_eq!(cfg.mem_budget, Some(1 << 20));
        assert_eq!(cfg.grid.num_pes(), 4);
        // sp2_2x2 is the builder with the paper's knobs.
        let sp2 = MachineConfig::sp2_2x2();
        assert_eq!(sp2.grid.dims, vec![2, 2]);
        assert_eq!(sp2.halo, 1);
        assert_eq!(sp2.mem_budget, None);
    }

    #[test]
    fn row_major_strides_shape() {
        assert_eq!(row_major_strides(&Shape::new([4, 6, 2])), vec![12, 2, 1]);
        assert_eq!(row_major_strides(&Shape::new([5])), vec![1]);
    }
}
