//! Per-PE subgrid storage with overlap areas.

use hpf_ir::Section;

/// The local piece of a distributed array on one PE, stored with `halo`
/// ghost layers on every side of every dimension (the *overlap area* of the
/// paper). Local coordinates are 1-based over the owned extents; ghost cells
/// have local coordinates `1-halo..=0` and `ext+1..=ext+halo`.
#[derive(Clone, Debug, PartialEq)]
pub struct Subgrid {
    /// Global bounds owned by this PE (may be empty).
    pub owned: Section,
    /// Ghost layers per side per dimension.
    pub halo: usize,
    /// Owned extents per dimension.
    pub ext: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl Subgrid {
    /// Allocate a zero-filled subgrid for a global owned range.
    pub fn new(owned: Section, halo: usize) -> Self {
        let ext: Vec<usize> = (0..owned.rank()).map(|d| owned.extent(d) as usize).collect();
        let padded: Vec<usize> = ext.iter().map(|&e| e + 2 * halo).collect();
        let mut strides = vec![1usize; ext.len()];
        for d in (0..ext.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * padded[d + 1];
        }
        let len: usize = padded.iter().product();
        Subgrid { owned, halo, ext, strides, data: vec![0.0; len] }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.ext.len()
    }

    /// Allocated storage in bytes (including overlap areas).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// True when this PE owns no elements.
    pub fn is_empty(&self) -> bool {
        self.ext.contains(&0)
    }

    #[inline]
    fn index(&self, local: &[i64]) -> usize {
        debug_assert_eq!(local.len(), self.rank());
        let mut idx = 0usize;
        for d in 0..local.len() {
            let l = local[d] + self.halo as i64 - 1;
            debug_assert!(
                l >= 0 && (l as usize) < self.ext[d] + 2 * self.halo,
                "local coordinate {} out of range (dim {d}, ext {}, halo {})",
                local[d],
                self.ext[d],
                self.halo
            );
            idx += l as usize * self.strides[d];
        }
        idx
    }

    /// Read a local coordinate (ghost cells allowed).
    #[inline]
    pub fn get(&self, local: &[i64]) -> f64 {
        self.data[self.index(local)]
    }

    /// Write a local coordinate (ghost cells allowed).
    #[inline]
    pub fn set(&mut self, local: &[i64], v: f64) {
        let i = self.index(local);
        self.data[i] = v;
    }

    /// Per-dimension storage strides (row-major over the padded extents).
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Flat storage index of a local coordinate (ghost cells allowed) — for
    /// executors that precompute access deltas.
    pub fn flat_index(&self, local: &[i64]) -> usize {
        self.index(local)
    }

    /// Raw storage (padded, row-major).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Translate a global coordinate to local (no bounds check on result).
    pub fn to_local(&self, global: &[i64]) -> Vec<i64> {
        global.iter().zip(&self.owned.0).map(|(&g, &(lo, _))| g - lo + 1).collect()
    }

    /// Read a global coordinate owned by (or in the halo of) this PE.
    pub fn get_global(&self, global: &[i64]) -> f64 {
        self.get(&self.to_local(global))
    }

    /// Write a global coordinate.
    pub fn set_global(&mut self, global: &[i64], v: f64) {
        let l = self.to_local(global);
        self.set(&l, v);
    }

    /// Gather a rectangular local region into a row-major buffer. Ranges are
    /// local 1-based and may extend into the halo.
    pub fn read_region(&self, ranges: &[(i64, i64)]) -> Vec<f64> {
        let mut out = Vec::with_capacity(region_len(ranges));
        let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        if ranges.iter().any(|&(lo, hi)| hi < lo) {
            return out;
        }
        loop {
            out.push(self.get(&cur));
            if !advance(&mut cur, ranges) {
                break;
            }
        }
        out
    }

    /// Scatter a row-major buffer into a rectangular local region.
    pub fn write_region(&mut self, ranges: &[(i64, i64)], buf: &[f64]) {
        assert_eq!(buf.len(), region_len(ranges), "buffer/region size mismatch");
        if buf.is_empty() {
            return;
        }
        let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        let mut i = 0;
        loop {
            self.set(&cur, buf[i]);
            i += 1;
            if !advance(&mut cur, ranges) {
                break;
            }
        }
    }

    /// Flat storage indices of a rectangular local region, in the same
    /// row-major order as [`Subgrid::read_region`] / [`Subgrid::write_region`].
    /// This is what persistent communication schedules precompute so that
    /// executing a shift needs no per-step subgrid coordinate math.
    pub fn region_indices(&self, ranges: &[(i64, i64)]) -> Vec<usize> {
        let mut out = Vec::with_capacity(region_len(ranges));
        if ranges.iter().any(|&(lo, hi)| hi < lo) {
            return out;
        }
        let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        loop {
            out.push(self.index(&cur));
            if !advance(&mut cur, ranges) {
                break;
            }
        }
        out
    }

    /// Overwrite every ghost cell with `value`, leaving owned elements
    /// untouched. Test instrumentation: poisoning the overlap areas before a
    /// communication step makes any ghost read the schedules failed to fill
    /// visible in the output.
    pub fn poison_halo(&mut self, value: f64) {
        if self.halo == 0 || self.is_empty() {
            return;
        }
        let owned: Vec<(i64, i64)> = self.ext.iter().map(|&e| (1, e as i64)).collect();
        let saved = self.read_region(&owned);
        self.data.fill(value);
        self.write_region(&owned, &saved);
    }

    /// Fill a rectangular local region with a constant (used for `EOSHIFT`
    /// boundary values).
    pub fn fill_region(&mut self, ranges: &[(i64, i64)], value: f64) {
        if ranges.iter().any(|&(lo, hi)| hi < lo) {
            return;
        }
        let mut cur: Vec<i64> = ranges.iter().map(|&(lo, _)| lo).collect();
        loop {
            self.set(&cur, value);
            if !advance(&mut cur, ranges) {
                break;
            }
        }
    }
}

/// Number of points in a local region.
pub fn region_len(ranges: &[(i64, i64)]) -> usize {
    ranges.iter().map(|&(lo, hi)| (hi - lo + 1).max(0) as usize).product()
}

/// Advance a row-major cursor; returns false when exhausted.
fn advance(cur: &mut [i64], ranges: &[(i64, i64)]) -> bool {
    for d in (0..cur.len()).rev() {
        cur[d] += 1;
        if cur[d] <= ranges[d].1 {
            return true;
        }
        cur[d] = ranges[d].0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Subgrid {
        // Owns global (3:4, 5:8), halo 1.
        Subgrid::new(Section::new([(3, 4), (5, 8)]), 1)
    }

    #[test]
    fn geometry() {
        let g = grid();
        assert_eq!(g.ext, vec![2, 4]);
        assert_eq!(g.rank(), 2);
        // (2+2) * (4+2) doubles.
        assert_eq!(g.bytes(), 4 * 6 * 8);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_subgrid() {
        let g = Subgrid::new(Section::new([(5, 4)]), 1);
        assert!(g.is_empty());
        assert_eq!(g.bytes(), 2 * 8); // just the halo cells
    }

    #[test]
    fn local_get_set_including_halo() {
        let mut g = grid();
        g.set(&[1, 1], 42.0);
        assert_eq!(g.get(&[1, 1]), 42.0);
        g.set(&[0, 0], 7.0); // corner ghost
        assert_eq!(g.get(&[0, 0]), 7.0);
        g.set(&[3, 5], 9.0); // high ghost
        assert_eq!(g.get(&[3, 5]), 9.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_halo_panics_in_debug() {
        let g = grid();
        g.get(&[-1, 1]);
    }

    #[test]
    fn global_translation() {
        let mut g = grid();
        g.set_global(&[3, 5], 1.5);
        assert_eq!(g.get(&[1, 1]), 1.5);
        assert_eq!(g.get_global(&[3, 5]), 1.5);
        assert_eq!(g.to_local(&[4, 8]), vec![2, 4]);
    }

    #[test]
    fn region_roundtrip() {
        let mut g = grid();
        let mut v = 0.0;
        for i in 1..=2i64 {
            for j in 1..=4i64 {
                v += 1.0;
                g.set(&[i, j], v);
            }
        }
        let r = g.read_region(&[(1, 2), (2, 3)]);
        assert_eq!(r, vec![2.0, 3.0, 6.0, 7.0]);
        let mut g2 = grid();
        g2.write_region(&[(1, 2), (2, 3)], &r);
        assert_eq!(g2.get(&[2, 3]), 7.0);
        assert_eq!(g2.get(&[1, 1]), 0.0);
    }

    #[test]
    fn region_into_halo() {
        let mut g = grid();
        g.write_region(&[(0, 0), (1, 4)], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.get(&[0, 3]), 3.0);
        let back = g.read_region(&[(0, 0), (1, 4)]);
        assert_eq!(back, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fill_region_constant() {
        let mut g = grid();
        g.fill_region(&[(3, 3), (0, 5)], -2.5);
        assert_eq!(g.get(&[3, 0]), -2.5);
        assert_eq!(g.get(&[3, 5]), -2.5);
        assert_eq!(g.get(&[2, 3]), 0.0);
    }

    #[test]
    fn empty_region_ops() {
        let mut g = grid();
        assert!(g.read_region(&[(2, 1), (1, 4)]).is_empty());
        g.write_region(&[(2, 1), (1, 4)], &[]);
        g.fill_region(&[(2, 1), (1, 4)], 1.0);
        assert_eq!(region_len(&[(2, 1), (1, 4)]), 0);
    }

    #[test]
    fn region_indices_match_region_order() {
        let mut g = grid();
        let ranges = [(0i64, 2i64), (1, 4)];
        let mut v = 0.0;
        // Distinct values over the region (including a halo row).
        let idx = g.region_indices(&ranges);
        for &i in &idx {
            v += 1.0;
            g.raw_mut()[i] = v;
        }
        // read_region enumerates the same cells in the same order.
        let read = g.read_region(&ranges);
        assert_eq!(read, (1..=idx.len()).map(|i| i as f64).collect::<Vec<_>>());
        assert!(g.region_indices(&[(2, 1), (1, 4)]).is_empty());
    }

    #[test]
    fn poison_halo_spares_owned() {
        let mut g = grid();
        g.set(&[1, 1], 42.0);
        g.set(&[0, 0], 7.0); // ghost corner, should be overwritten
        g.poison_halo(f64::MAX);
        assert_eq!(g.get(&[1, 1]), 42.0);
        assert_eq!(g.get(&[2, 4]), 0.0);
        assert_eq!(g.get(&[0, 0]), f64::MAX);
        assert_eq!(g.get(&[3, 5]), f64::MAX);
        assert_eq!(g.get(&[0, 2]), f64::MAX);
    }

    #[test]
    fn region_len_counts() {
        assert_eq!(region_len(&[(1, 2), (5, 8)]), 8);
        assert_eq!(region_len(&[(0, 0)]), 1);
    }
}
