#![warn(missing_docs)]

//! # hpf-stencil — root facade
//!
//! Re-exports the public API of [`hpf_core`]; see the crate-level
//! documentation there and the `examples/` directory for usage.

pub use hpf_core::*;
