//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! provides a minimal wall-clock benchmark harness with the API surface the
//! workspace's benches use: `Criterion::benchmark_group`, group knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`, `throughput`),
//! `bench_function` with `BenchmarkId` or `&str` names, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurements are honest wall-clock medians over `sample_size` samples,
//! printed as one line per benchmark — no HTML reports, no statistics
//! beyond min/median/max, but stable enough to compare configurations.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed as elements/second).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name by `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after a warm-up phase.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Iterations per sample so the measurement budget covers all samples.
        let budget_per_sample = self.measurement / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// A named group of benchmarks with shared measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<I: IntoBenchmarkId, O>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{}/{:<40} (no samples)", self.name, id.label());
            return self;
        }
        s.sort();
        let median = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        let label = format!("{}/{}", self.name, id.label());
        let tput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {:>12.0} elem/s", eps)
            }
            Some(Throughput::Bytes(n)) => {
                let bps = n as f64 / median.as_secs_f64();
                format!("  {:>12.0} B/s", bps)
            }
            None => String::new(),
        };
        println!("{label:<56} [{} {} {}]{tput}", fmt_dur(lo), fmt_dur(median), fmt_dur(hi));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op marker).
    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(1000),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declare a group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function(BenchmarkId::new("count", 100), |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        g.bench_function("plain_name", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000 s");
    }
}
