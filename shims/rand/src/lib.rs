//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this path crate
//! provides the small slice of the `rand 0.8` API the workspace actually
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen_range` (over integer `Range`/`RangeInclusive`) and
//! `gen_bool`. The generator is SplitMix64 — deterministic, seedable, and
//! statistically fine for workload generation and tests (it is *not* the
//! real StdRng stream, which no caller here depends on).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa, same construction as rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 under the hood; the
    /// name mirrors `rand::rngs::StdRng` so call sites are unchanged).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
