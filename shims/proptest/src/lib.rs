//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this path crate
//! reimplements the slice of proptest's API this workspace uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map` and
//!   `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   `any::<bool>()` / `any::<u8>()`, `prop::collection::vec`,
//!   `prop::array::uniform2`, and regex-character-class string literals of
//!   the form `"[class]{lo,hi}"`;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   [`prop_oneof!`] (weighted and unweighted), [`prop_assert!`] and
//!   [`prop_assert_eq!`].
//!
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce across runs. There is **no shrinking**: a failing case panics
//! with the ordinary assertion message, which is enough for CI.

pub mod strategy {
    use rand::rngs::StdRng;

    /// The random source threaded through strategies.
    pub type TestRng = StdRng;

    /// A value generator. Object-safe core; combinators live in
    /// [`StrategyExt`]-style provided methods guarded by `Self: Sized`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// `&str` as a strategy: a regex character class with a bounded
    /// repetition, `"[class]{lo,hi}"`, producing a random `String`. This is
    /// the only regex shape the workspace's tests use.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_repeat(self);
            let len = rand::Rng::gen_range(rng, lo..=hi);
            (0..len).map(|_| chars[rand::Rng::gen_range(rng, 0..chars.len())]).collect()
        }
    }

    /// Parse `[class]{lo,hi}` into the expanded character set and bounds.
    fn parse_class_repeat(pat: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pat.chars().collect();
        assert!(
            bytes.first() == Some(&'['),
            "string strategy shim only supports \"[class]{{lo,hi}}\" patterns, got {pat:?}"
        );
        let close = bytes
            .iter()
            .position(|&c| c == ']')
            .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
        let class = &bytes[1..close];
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` range (a `-` that is first, last, or not followed by a
            // range end is a literal).
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                assert!(lo <= hi, "bad range {lo}-{hi} in {pat:?}");
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty class in {pat:?}");
        let rep: String = bytes[close + 1..].iter().collect();
        let inner = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("missing {{lo,hi}} repetition in {pat:?}"));
        let (lo, hi) = match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n = inner.trim().parse().unwrap();
                (n, n)
            }
        };
        (chars, lo, hi)
    }

    /// One weighted arm of a [`prop_oneof!`]; used by the macro expansion.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from weighted boxed arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rand::Rng::gen_range(rng, 0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, <$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// `prop::collection` — sized collections of strategy draws.
pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Size bounds accepted by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `size` draws from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// `prop::array` — fixed-size arrays of strategy draws.
pub mod array {
    use super::strategy::{Strategy, TestRng};

    /// The strategy returned by [`uniform2`].
    #[derive(Clone, Debug)]
    pub struct Uniform2<S>(S);

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 2] {
            [self.0.sample(rng), self.0.sample(rng)]
        }
    }

    /// A `[T; 2]` of independent draws.
    pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
        Uniform2(element)
    }
}

/// Runner configuration and deterministic seeding.
pub mod test_runner {
    pub use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Unused (kept so `..Config::default()` updates compile).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65536 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's name so every
    /// run (and every machine) generates the same cases.
    pub fn deterministic_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: `proptest! { #[test] fn name(x in strat, ..) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Choose among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_maps_compose() {
        let mut rng = crate::test_runner::deterministic_rng("compose");
        let s = (0u8..4, -2i64..=2).prop_map(|(a, b)| (a as i64) + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((-2..=5).contains(&v));
        }
    }

    #[test]
    fn oneof_weights_respected() {
        let mut rng = crate::test_runner::deterministic_rng("weights");
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut ones = 0;
        for _ in 0..1000 {
            if s.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 800, "{ones}");
    }

    #[test]
    fn string_class_strategy() {
        let mut rng = crate::test_runner::deterministic_rng("strings");
        let s = "[A-C0-1 -]{2,5}";
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| "ABC01 -".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn collection_and_array() {
        let mut rng = crate::test_runner::deterministic_rng("coll");
        let s = prop::collection::vec(prop::array::uniform2(0i64..3), 1..4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|a| a.iter().all(|&x| (0..3).contains(&x))));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_cases(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }
}
