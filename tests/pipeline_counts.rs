//! Figure-level structural assertions: the communication and storage counts
//! the paper reports in its text and figures.

use hpf_stencil::baselines::naive;
use hpf_stencil::frontend::compile_source;
use hpf_stencil::passes::{compile, CompileOptions, Stage, TempPolicy};
use hpf_stencil::presets;

/// Figure 6/15: twelve CSHIFTs reduce to four OVERLAP_SHIFTs, two carrying
/// RSDs, for every 9-point specification.
#[test]
fn nine_point_reaches_four_overlap_shifts() {
    for src in
        [presets::nine_point_cshift(64), presets::nine_point_array(64), presets::problem9(64)]
    {
        let c = compile(&compile_source(&src).unwrap(), CompileOptions::full());
        assert_eq!(c.stats.comm_ops, 4);
        assert_eq!(c.stats.unioning.with_rsd, 2);
        assert_eq!(c.stats.nests, 1, "single fused subgrid loop nest");
    }
}

/// §4: 12 CSHIFT temporaries for the naive single-statement translation.
#[test]
fn naive_single_statement_needs_twelve_temps() {
    let c =
        compile(&compile_source(&presets::nine_point_cshift(64)).unwrap(), naive::naive_options());
    assert_eq!(c.stats.normalize.temps, 12);
    assert_eq!(c.stats.normalize.shifts, 12);
    assert_eq!(c.stats.arrays_allocated, 14); // + SRC and DST
}

/// §4.1: Problem 9 runs in 3 temporary arrays (RIP, RIN, one shared TMP).
#[test]
fn problem9_three_temporaries() {
    let mut opts = naive::naive_options();
    opts.temp_policy = TempPolicy::Reuse;
    let c = compile(&compile_source(&presets::problem9(64)).unwrap(), opts);
    assert_eq!(c.stats.normalize.temps, 1, "one compiler temp");
    assert_eq!(c.stats.arrays_allocated, 5, "U, T, RIP, RIN, TMP1");
}

/// §4.2: after offset arrays, no temporaries remain allocated.
#[test]
fn optimized_problem9_allocates_only_u_and_t() {
    let c = compile(&compile_source(&presets::problem9(64)).unwrap(), CompileOptions::full());
    assert_eq!(c.stats.arrays_allocated, 2);
    assert_eq!(c.stats.offset.converted, 8);
    assert_eq!(c.stats.offset.copies_inserted, 0);
}

/// Figure 17's structural trajectory: per-stage communication operation and
/// loop-nest counts for Problem 9.
#[test]
fn problem9_stage_trajectory() {
    let checked = compile_source(&presets::problem9(64)).unwrap();
    let counts: Vec<(usize, usize, u64)> = Stage::all()
        .iter()
        .map(|s| {
            let c = compile(&checked, CompileOptions::upto(*s));
            (c.stats.comm_ops, c.stats.nests, c.stats.offset.converted as u64)
        })
        .collect();
    assert_eq!(counts[0], (8, 7, 0), "original: 8 full shifts, 7 loops");
    assert_eq!(counts[1].0, 8);
    assert_eq!(counts[1].2, 8, "all shifts become overlap shifts");
    assert_eq!(counts[2], (8, 1, 8), "partitioning fuses the computes");
    assert_eq!(counts[3], (4, 1, 8), "unioning: 4 messages");
    assert_eq!(counts[4], (4, 1, 8));
}

/// The paper's §5 punchline: memory optimization halves the per-point loads
/// of the fused Problem 9 nest (15 -> 9 unit loads, and unroll-and-jam
/// shares 6 more across row pairs).
#[test]
fn memopt_reduces_per_point_traffic() {
    let checked = compile_source(&presets::problem9(64)).unwrap();
    let before = compile(&checked, CompileOptions::upto(Stage::Unioning));
    let after = compile(&checked, CompileOptions::upto(Stage::MemOpt));
    assert_eq!(before.stats.memopt.loads_before, 15);
    assert_eq!(before.stats.memopt.loads_after, 15, "memopt disabled");
    assert_eq!(after.stats.memopt.loads_after, 9);
    assert_eq!(after.stats.memopt.stores_after, 1);
    assert_eq!(after.stats.memopt.unrolled, 1);
}

/// EOSHIFT kernels union like circular ones but never mix with them.
#[test]
fn eoshift_unioning_counts() {
    let c = compile(&compile_source(&presets::image_blur(32, 1)).unwrap(), CompileOptions::full());
    assert_eq!(c.stats.comm_ops, 4, "8 EOSHIFTs union to 4");
    assert_eq!(c.stats.unioning.with_rsd, 2);
}
