//! Differential testing of the compiled-kernel backend: any kernel, at any
//! pipeline stage, on any grid, must produce **bitwise-identical** results
//! under the bytecode backend and the tree interpreter, on the sequential,
//! threaded, and split-phase threaded-overlap engines — the interpreter on
//! the sequential engine is the oracle everything else is checked against.
//! Per-PE operation counters must agree too, since the bytecode VM
//! bulk-counts the same loads/stores/flops/iters and the overlap engine
//! computes the same points through the same schedules, merely reordered.

use hpf_bench::workload::{generate, WorkloadSpec};
use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::runtime::PeStats;
use hpf_stencil::{presets, Backend, Engine, Kernel, MachineConfig};
use proptest::prelude::*;

const COMBOS: [(Engine, Backend); 6] = [
    (Engine::Sequential, Backend::Interp),
    (Engine::Sequential, Backend::Bytecode),
    (Engine::Threaded, Backend::Interp),
    (Engine::Threaded, Backend::Bytecode),
    (Engine::ThreadedOverlap, Backend::Interp),
    (Engine::ThreadedOverlap, Backend::Bytecode),
];

/// Run one (engine, backend) combination; return the gathered outputs (only
/// those arrays the program actually allocates) and the per-PE counters.
fn run_combo(
    kernel: &Kernel,
    grid: &[usize],
    engine: Engine,
    backend: Backend,
    outputs: &[&str],
) -> (Vec<(String, Vec<f64>)>, Vec<PeStats>) {
    let mut runner = kernel
        .runner(MachineConfig::with_grid(grid.to_vec()))
        .init("U", |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin())
        .engine(engine)
        .backend(backend);
    if kernel.array_id("V").is_ok() {
        runner = runner.init("V", |p| ((p[0] - 2 * p[1]) as f64 * 0.05).cos());
    }
    let run = runner.run().unwrap_or_else(|e| panic!("{engine:?}/{backend:?} failed: {e}"));
    let mut arrays = Vec::new();
    for name in outputs {
        let id = kernel.array_id(name).unwrap();
        if run.machine.is_allocated(id) {
            arrays.push((name.to_string(), run.machine.gather(id)));
        }
    }
    (arrays, run.stats().per_pe)
}

fn grid_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![1, 1]),
        Just(vec![2, 2]),
        Just(vec![1, 2]),
        Just(vec![2, 1]),
        Just(vec![3, 2]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The headline invariant of the codegen backend: random stencil
    /// kernels (shift chains, EOSHIFT boundaries, WHERE masks, accumulation
    /// statements, time loops) are bitwise-equal across all six
    /// engine × backend combinations, with identical per-PE counters.
    #[test]
    fn random_kernels_bitwise_equal_across_backends(
        seed in 0u64..1_000_000,
        stmts in 1usize..=4,
        time_loop in prop_oneof![Just(None), Just(Some(2usize)), Just(Some(3))],
        grid in grid_strategy(),
        stage_idx in 0usize..5,
    ) {
        let spec = WorkloadSpec { n: 10, stmts, time_loop, ..Default::default() };
        let src = generate(&spec, seed);
        let stage = Stage::all()[stage_idx];
        let kernel = Kernel::compile(&src, CompileOptions::upto(stage))
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let (base_arrays, base_stats) =
            run_combo(&kernel, &grid, Engine::Sequential, Backend::Interp, &["T", "S"]);
        for (engine, backend) in COMBOS {
            let (arrays, stats) = run_combo(&kernel, &grid, engine, backend, &["T", "S"]);
            prop_assert_eq!(
                &base_arrays, &arrays,
                "{:?}/{:?} differs at stage {:?} grid {:?} for:\n{}",
                engine, backend, stage, &grid, &src
            );
            prop_assert_eq!(
                &base_stats, &stats,
                "{:?}/{:?} per-PE counters differ at stage {:?} for:\n{}",
                engine, backend, stage, &src
            );
        }
    }
}

#[test]
fn problem9_bitwise_equal_every_stage_and_combo() {
    for stage in Stage::all() {
        let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::upto(stage)).unwrap();
        let base = run_combo(&kernel, &[2, 2], Engine::Sequential, Backend::Interp, &["T"]);
        for (engine, backend) in COMBOS {
            let got = run_combo(&kernel, &[2, 2], engine, backend, &["T"]);
            assert_eq!(base, got, "{engine:?}/{backend:?} differs at stage {stage:?}");
        }
    }
}

#[test]
fn lint_dirty_kernel_takes_fallback_yet_stays_bitwise_equal() {
    // Deleting an OVERLAP_SHIFT makes the kernel halo-unsafe (HS001), so
    // the overlap engine's lint gate must refuse to split it and fall back
    // to the blocking plan. All engines then execute the *same* broken node
    // program — results still agree bitwise across every combination (they
    // are wrong relative to the source semantics, but identically so).
    let mut kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    assert!(kernel.drop_overlap_shift(0), "Problem 9 has shifts to drop");
    assert!(
        hpf_stencil::analysis::has_errors(&kernel.lint()),
        "dropping a shift must trip the halo-safety lint"
    );
    let base = run_combo(&kernel, &[2, 2], Engine::Sequential, Backend::Interp, &["T"]);
    for (engine, backend) in COMBOS {
        let got = run_combo(&kernel, &[2, 2], engine, backend, &["T"]);
        assert_eq!(base, got, "{engine:?}/{backend:?} differs on the lint-dirty kernel");
    }
}

/// Run `kernel` as a persistent plan at superstep depth `k` for exactly
/// `logical_steps` logical steps (depth k fuses `k` of them per machine step
/// on flat kernels), returning the gathered outputs and the built plan's
/// supersteps-per-step count (0 = fell back to the classic schedule).
#[allow(clippy::too_many_arguments)]
fn run_superstep(
    kernel: &Kernel,
    grid: &[usize],
    engine: Engine,
    backend: Backend,
    k: usize,
    logical_steps: usize,
    input: &str,
    outputs: &[&str],
) -> (Vec<(String, Vec<f64>)>, u64) {
    let cfg = hpf_stencil::ExecConfig::new().engine(engine).backend(backend).superstep(k);
    let mut plan = kernel
        .plan(MachineConfig::with_grid(grid.to_vec()))
        .init(input, |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin())
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{engine:?}/{backend:?} ss={k} failed to build: {e}"));
    let per = plan.logical_steps_per_step();
    assert_eq!(logical_steps % per, 0, "budget {logical_steps} not divisible at depth {k}");
    plan.iterate(logical_steps / per);
    let mut arrays = Vec::new();
    for name in outputs {
        arrays.push((name.to_string(), plan.gather(name).unwrap()));
    }
    (arrays, plan.supersteps_per_step())
}

#[test]
fn superstep_depths_bitwise_equal_across_backends() {
    // The deep-halo superstep schedule must be invisible to the results: at
    // the same logical step count, depths 2 and 4 match the classic depth-1
    // sequential-interpreter oracle bitwise, on every engine x backend
    // combination and on uneven grids.
    let kernel = Kernel::compile(&presets::problem9(18), CompileOptions::full()).unwrap();
    for grid in [&[2usize, 2][..], &[3, 2]] {
        let (oracle, _) =
            run_superstep(&kernel, grid, Engine::Sequential, Backend::Interp, 1, 4, "U", &["T"]);
        for k in [1usize, 2, 4] {
            for (engine, backend) in COMBOS {
                let (got, supersteps) =
                    run_superstep(&kernel, grid, engine, backend, k, 4, "U", &["T"]);
                assert_eq!(oracle, got, "{engine:?}/{backend:?} ss={k} differs on grid {grid:?}");
                if k > 1 {
                    assert!(
                        supersteps >= 1,
                        "{engine:?}/{backend:?} ss={k} silently fell back on grid {grid:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn superstep_time_loop_tiles_in_place_and_stays_bitwise_equal() {
    // Jacobi's TIME loop is the other eligible shape: the superstep tiles
    // the loop body in place (k iterations per exchange), so one machine
    // step still covers the whole loop and iterate counts stay unchanged.
    let kernel = Kernel::compile(&presets::jacobi(16, 4), CompileOptions::full()).unwrap();
    let (oracle, _) =
        run_superstep(&kernel, &[2, 2], Engine::Sequential, Backend::Interp, 1, 2, "U", &["U"]);
    for k in [2usize, 4] {
        for (engine, backend) in COMBOS {
            let (got, supersteps) =
                run_superstep(&kernel, &[2, 2], engine, backend, k, 2, "U", &["U"]);
            assert_eq!(oracle, got, "{engine:?}/{backend:?} ss={k} differs on the time loop");
            assert!(supersteps >= 1, "{engine:?}/{backend:?} ss={k} fell back on the time loop");
        }
    }
}

#[test]
fn superstep_ineligible_kernel_falls_back_with_diagnostic() {
    // image_blur reads through EOSHIFT (value-dependent boundaries), which
    // the coverage analysis rejects (SS002): a depth-4 request must fall
    // back to the classic schedule, say so in the diagnostics, and still
    // match the classic oracle bitwise on every combination.
    let kernel = Kernel::compile(&presets::image_blur(12, 4), CompileOptions::full()).unwrap();
    let diags = hpf_stencil::exec::superstep_diags(&kernel.compiled.node, 4);
    assert!(
        diags.iter().any(|d| d.code == "SS002"),
        "EOSHIFT kernel must be rejected with SS002: {diags:?}"
    );
    let (oracle, _) =
        run_superstep(&kernel, &[2, 2], Engine::Sequential, Backend::Interp, 1, 2, "IMG", &["OUT"]);
    for (engine, backend) in COMBOS {
        let (got, supersteps) =
            run_superstep(&kernel, &[2, 2], engine, backend, 4, 2, "IMG", &["OUT"]);
        assert_eq!(oracle, got, "{engine:?}/{backend:?} fallback differs");
        assert_eq!(supersteps, 0, "{engine:?}/{backend:?} must fall back to classic");
    }
}

#[test]
fn bytecode_backend_reports_kernel_counters() {
    let kernel = Kernel::compile(&presets::problem9(12), CompileOptions::full()).unwrap();
    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", |p| (p[0] + p[1]) as f64)
        .backend(Backend::Bytecode)
        .run()
        .unwrap();
    let st = run.stats();
    assert!(st.kernels_compiled > 0, "nests compiled to bytecode");
    assert_eq!(st.kernel_execs, st.kernels_compiled, "one sweep executes each kernel once");
    // The interpreter backend never touches these counters.
    let run =
        kernel.runner(MachineConfig::sp2_2x2()).init("U", |p| (p[0] + p[1]) as f64).run().unwrap();
    assert_eq!(run.stats().kernels_compiled, 0);
    assert_eq!(run.stats().kernel_execs, 0);
}

#[test]
fn bytecode_plan_compiles_once_and_reuses_across_steps() {
    let kernel = Kernel::compile(&presets::jacobi(16, 1), CompileOptions::full()).unwrap();
    let init = |p: &[i64]| ((p[0] * 5 + p[1] * 3) as f64).sin();
    let mut plan = kernel
        .plan(MachineConfig::sp2_2x2())
        .init("U", init)
        .backend(Backend::Bytecode)
        .build()
        .unwrap();
    plan.iterate(5);
    let st = plan.stats();
    assert!(st.kernels_compiled > 0);
    // Compiled once at build; each of the 5 steps re-executes every kernel.
    assert_eq!(st.kernel_execs, 5 * st.kernels_compiled);
    // And the stepped state matches an interpreter-backend plan bitwise.
    let mut plan_i = kernel.plan(MachineConfig::sp2_2x2()).init("U", init).build().unwrap();
    plan_i.iterate(5);
    assert_eq!(plan.gather("U").unwrap(), plan_i.gather("U").unwrap());
    assert_eq!(plan.stats().per_pe, plan_i.stats().per_pe);
}
