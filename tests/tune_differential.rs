//! Differential testing of the auto-tuner: whatever configuration the tuner
//! picks must be **behavior-preserving** — bitwise-identical arrays, and
//! bitwise-identical per-PE counters once the grid is fixed — and every
//! candidate it emits must build into a plan that passes static
//! verification. The on-disk cache must be deterministic (stable
//! fingerprints), effective (a warm hit performs zero candidate timings),
//! and safe (a corrupted file degrades to a fresh search, never an error).

use hpf_bench::workload::{generate, WorkloadSpec};
use hpf_stencil::runtime::PeStats;
use hpf_stencil::tune::Candidate;
use hpf_stencil::{
    presets, CompileOptions, Engine, ExecConfig, Kernel, MachineConfig, TuneOutcome, Tuner,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// A fast searching tuner (no disk, few timings) over a 2x2 base machine.
fn test_tuner() -> Tuner {
    Tuner::new(base_config()).no_cache().top_k(4).reps(1)
}

fn base_config() -> MachineConfig {
    MachineConfig::with_grid(vec![2, 2]).par_threshold(4096)
}

/// Unique temp-file path for cache tests (tests run concurrently).
fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hpf-tune-diff-{tag}-{}.json", std::process::id()))
}

/// Run `kernel` under an explicit (machine, exec) configuration for
/// `steps` machine steps, gathering the given output arrays (skipping ones
/// the program never allocates), the per-PE counters, and the number of
/// *logical* time steps covered (a driver-stepped superstep plan covers
/// its depth per machine step).
#[allow(clippy::type_complexity)]
fn run_config(
    kernel: &Kernel,
    mcfg: MachineConfig,
    ecfg: ExecConfig,
    outputs: &[&str],
    steps: usize,
) -> (Vec<(String, Vec<f64>)>, Vec<PeStats>, usize) {
    let mut planner =
        kernel.plan(mcfg).config(ecfg).init("U", |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin());
    if kernel.array_id("V").is_ok() {
        planner = planner.init("V", |p| ((p[0] - 2 * p[1]) as f64 * 0.05).cos());
    }
    let mut plan = planner.build().unwrap_or_else(|e| panic!("build failed: {e}"));
    plan.iterate(steps);
    let logical = plan.logical_steps_per_step() * steps;
    let run = plan.into_run();
    let mut arrays = Vec::new();
    for name in outputs {
        let Ok(id) = kernel.array_id(name) else { continue };
        if run.machine.is_allocated(id) {
            arrays.push((name.to_string(), run.machine.gather(id)));
        }
    }
    (arrays, run.stats().per_pe, logical)
}

/// Tune `kernel` and check the winner against the defaults over the same
/// *logical* work: arrays must be bitwise-identical to the default
/// configuration on the default grid, and to the default engine/backend
/// *on the tuned grid*. For a depth-1 winner the per-PE counters must also
/// be bitwise-identical on the tuned grid; a superstep winner changes the
/// counters by construction — it must avoid communication (no more
/// messages than the classic schedule over the same logical steps) without
/// skipping compute (at least as many iterations).
fn assert_tuned_matches_default(kernel: &Kernel) -> TuneOutcome {
    let outcome = kernel.tune(&test_tuner()).unwrap();
    let best = &outcome.best;
    let outputs = ["T", "S"];

    // One machine step of the winner, then the same logical coverage from
    // the classic configurations (classic plans cover 1 logical step per
    // machine step).
    let (tuned_arrays, tuned_stats, logical) =
        run_config(kernel, best.machine_config(&base_config()), best.exec_config(), &outputs, 1);
    let (default_arrays, _, _) =
        run_config(kernel, base_config(), ExecConfig::new(), &outputs, logical);
    let (ref_arrays, ref_stats, _) = run_config(
        kernel,
        best.machine_config(&base_config()),
        ExecConfig::new(),
        &outputs,
        logical,
    );

    assert_eq!(default_arrays, tuned_arrays, "tuned config changed results: {}", best.label());
    assert_eq!(ref_arrays, tuned_arrays, "grid-matched results differ: {}", best.label());
    if best.superstep <= 1 {
        assert_eq!(ref_stats, tuned_stats, "per-PE counters differ on {}", best.label());
    } else {
        let msgs = |st: &[PeStats]| st.iter().map(|s| s.msgs_sent).sum::<u64>();
        let iters = |st: &[PeStats]| st.iter().map(|s| s.iters).sum::<u64>();
        assert!(
            msgs(&tuned_stats) <= msgs(&ref_stats),
            "superstep winner {} sent more messages than classic",
            best.label()
        );
        assert!(
            iters(&tuned_stats) >= iters(&ref_stats),
            "superstep winner {} skipped compute",
            best.label()
        );
    }
    outcome
}

/// Every candidate that built (finite modeled time) must produce a plan
/// that passes static verification — the tuner may only time and pick
/// machine-checked-safe configurations.
fn assert_candidates_verify(kernel: &Kernel, candidates: &[Candidate]) {
    for c in candidates.iter().filter(|c| c.modeled_ms.is_finite()) {
        let plan = kernel
            .plan(c.machine_config(&base_config()))
            .config(c.exec_config())
            .build()
            .unwrap_or_else(|e| panic!("candidate {} no longer builds: {e}", c.label()));
        let diags = plan.verify_static();
        assert!(diags.is_empty(), "candidate {} fails verification: {diags:?}", c.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The headline invariant: for random stencil kernels (shift chains,
    /// EOSHIFT boundaries, WHERE masks, time loops), auto-tuning never
    /// changes what is computed — only how fast.
    #[test]
    fn tuned_config_is_behavior_preserving(
        seed in 0u64..1_000_000,
        stmts in 1usize..=3,
        time_loop in prop_oneof![Just(None), Just(Some(2usize))],
    ) {
        let spec = WorkloadSpec { n: 10, stmts, time_loop, ..Default::default() };
        let src = generate(&spec, seed);
        let kernel = Kernel::compile(&src, CompileOptions::full())
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        assert_tuned_matches_default(&kernel);
    }
}

#[test]
fn problem9_tuned_matches_default_and_all_candidates_verify() {
    let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    let outcome = assert_tuned_matches_default(&kernel);
    // 4 PEs in rank-2 meshes: 3 factorizations x (2 seq + 4 threaded + 4
    // overlap) combos — Problem 9 is lint-clean, so overlap is in play —
    // x 4 superstep depths (the flat shift chain is eligible at every
    // searched depth).
    assert_eq!(outcome.candidates.len(), 120);
    assert_candidates_verify(&kernel, &outcome.candidates);
}

#[test]
fn generated_workload_candidates_verify() {
    let spec = WorkloadSpec { n: 12, stmts: 2, time_loop: Some(2), ..Default::default() };
    let kernel = Kernel::compile(&generate(&spec, 7), CompileOptions::full()).unwrap();
    let outcome = kernel.tune(&test_tuner()).unwrap();
    assert_candidates_verify(&kernel, &outcome.candidates);
}

#[test]
fn fingerprints_are_stable_across_runs() {
    // Two compiles of the same source agree on the tuning seed and on the
    // resulting fingerprint; a different problem size re-keys both.
    let a = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    let b = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    assert_eq!(a.tune_seed(), b.tune_seed());
    let oa = a.tune(&test_tuner()).unwrap();
    let ob = b.tune(&test_tuner()).unwrap();
    assert_eq!(oa.fingerprint, ob.fingerprint);

    let c = Kernel::compile(&presets::problem9(32), CompileOptions::full()).unwrap();
    assert_ne!(a.tune_seed(), c.tune_seed(), "problem size must re-key the cache");
    assert_ne!(oa.fingerprint, c.tune(&test_tuner()).unwrap().fingerprint);
}

#[test]
fn warm_cache_hit_skips_the_search() {
    let kernel = Kernel::compile(&presets::problem9(12), CompileOptions::full()).unwrap();
    let path = tmp("warm");
    let _ = std::fs::remove_file(&path);
    let tuner = test_tuner().cache_path(&path);

    let cold = kernel.tune(&tuner).unwrap();
    assert!(!cold.cache_hit);
    assert!(cold.timed > 0);

    let warm = kernel.tune(&tuner).unwrap();
    assert!(warm.cache_hit, "second search must hit the cache");
    assert_eq!(warm.timed, 0, "a cache hit performs zero candidate timings");
    assert!(warm.candidates.is_empty(), "a cache hit enumerates nothing");
    assert_eq!(warm.best.grid, cold.best.grid);
    assert_eq!(warm.best.exec_config(), cold.best.exec_config());
    assert_eq!(warm.best.par_threshold, cold.best.par_threshold);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_cache_falls_back_to_fresh_search() {
    let kernel = Kernel::compile(&presets::problem9(12), CompileOptions::full()).unwrap();
    for garbage in ["not json at all", "{\"version\":99,\"entries\":[]}", "{\"version\":1,\"ent"] {
        let path = tmp("corrupt");
        std::fs::write(&path, garbage).unwrap();
        let out = kernel.tune(&test_tuner().cache_path(&path)).unwrap();
        assert!(!out.cache_hit, "corrupt cache ({garbage:?}) must not hit");
        assert!(out.timed > 0, "corrupt cache must trigger a real search");
        // The fresh result replaced the garbage with a loadable cache.
        let warm = kernel.tune(&test_tuner().cache_path(&path)).unwrap();
        assert!(warm.cache_hit, "rewritten cache must hit");
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn auto_config_resolves_through_the_planner_and_counts_in_stats() {
    let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    let path = tmp("auto");
    let _ = std::fs::remove_file(&path);
    let init = |p: &[i64]| ((p[0] * 3 + p[1]) as f64 * 0.02).cos();

    // Default run for reference.
    let mut reference = kernel.plan(base_config()).init("U", init).build().unwrap();
    reference.iterate(3);

    // Cold auto run: the planner resolves ExecConfig::auto through the
    // tuner; the miss and search time land in the aggregate stats.
    let mut cold = kernel
        .plan(base_config())
        .init("U", init)
        .config(ExecConfig::auto())
        .tuner(test_tuner().cache_path(&path))
        .build()
        .unwrap();
    cold.iterate(3);
    let st = cold.stats();
    assert_eq!((st.tune_cache_hits, st.tune_cache_misses), (0, 1));
    assert!(st.tune_search_ns > 0);
    assert!(format!("{st}").contains("tune: 0 hits, 1 misses"));
    assert_eq!(reference.gather("T").unwrap(), cold.gather("T").unwrap());

    // Warm auto run: pure cache hit, same results.
    let mut warm = kernel
        .plan(base_config())
        .init("U", init)
        .config(ExecConfig::auto())
        .tuner(test_tuner().cache_path(&path))
        .build()
        .unwrap();
    warm.iterate(3);
    let st = warm.stats();
    assert_eq!((st.tune_cache_hits, st.tune_cache_misses), (1, 0));
    assert_eq!(reference.gather("T").unwrap(), warm.gather("T").unwrap());

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn lint_dirty_kernel_is_never_tuned_onto_the_overlap_engine() {
    let mut kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    assert!(kernel.drop_overlap_shift(0), "Problem 9 has shifts to drop");
    assert!(hpf_stencil::analysis::has_errors(&kernel.lint()));
    let outcome = kernel.tune(&test_tuner().exhaustive()).unwrap();
    assert!(
        outcome.candidates.iter().all(|c| c.engine != Engine::ThreadedOverlap),
        "halo-unsafe kernels must not see the split-phase engine"
    );
    assert_ne!(outcome.best.engine, Engine::ThreadedOverlap);
}
