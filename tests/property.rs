//! Property-based tests: randomly generated stencil kernels, compiled at
//! every optimization level and run on random PE grids, must match the
//! reference interpreter exactly; plus algebraic invariants of the shift
//! machinery.

use hpf_stencil::ir::{ArrayDecl, ArrayId, Distribution, Offsets, Shape, ShiftKind};
use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::runtime::{Machine, MachineConfig};
use hpf_stencil::{Engine, Kernel};
use proptest::prelude::*;

/// One random stencil term: `coeff * CHAIN(src)`, chain of up to two unit
/// shifts.
#[derive(Clone, Debug)]
struct Term {
    coeff: f64,
    src: usize, // index into ["U", "V"]
    shifts: Vec<(i64, usize)>,
    endoff: bool,
}

/// One random statement: a full-space assignment of a sum of terms to T or
/// V, optionally accumulating (`T = T + ...`) and optionally `WHERE`-masked.
#[derive(Clone, Debug)]
struct RandStmt {
    dst: usize, // 1 = T, 2 = V
    accumulate: bool,
    terms: Vec<Term>,
    mask: Option<(u8, usize)>, // (cmp op index, source array index)
}

#[derive(Clone, Debug)]
struct RandKernel {
    n: usize,
    stmts: Vec<RandStmt>,
    in_loop: Option<usize>,
}

const NAMES: [&str; 3] = ["U", "T", "V"];

impl RandKernel {
    fn source(&self) -> String {
        let mut s = format!("PROGRAM rand\nPARAM N = {}\nREAL U(N,N), T(N,N), V(N,N)\n", self.n);
        let mut body = String::new();
        for st in &self.stmts {
            let dst = NAMES[st.dst];
            let mut rhs = if st.accumulate { dst.to_string() } else { String::new() };
            for t in &st.terms {
                let mut operand = NAMES[t.src].to_string();
                for (amt, dim) in &t.shifts {
                    let intr = if t.endoff { "EOSHIFT" } else { "CSHIFT" };
                    operand = format!("{intr}({operand},{amt},{})", dim + 1);
                }
                let term = format!("{} * {operand}", t.coeff);
                if rhs.is_empty() {
                    rhs = term;
                } else {
                    rhs = format!("{rhs} + {term}");
                }
            }
            if rhs.is_empty() {
                rhs = "0".to_string();
            }
            match st.mask {
                None => body.push_str(&format!("{dst} = {rhs}\n")),
                Some((op, src)) => {
                    let ops = [">", "<", ">=", "<=", "==", "/="];
                    body.push_str(&format!(
                        "WHERE ({} {} 0.1) {dst} = {rhs}\n",
                        NAMES[src],
                        ops[op as usize % 6]
                    ));
                }
            }
        }
        if let Some(iters) = self.in_loop {
            s.push_str(&format!("DO {iters} TIMES\n{body}ENDDO\n"));
        } else {
            s.push_str(&body);
        }
        s.push_str("END\n");
        s
    }
}

fn term_strategy() -> impl Strategy<Value = Term> {
    (
        -4i32..=4,
        0usize..2,
        prop::collection::vec((prop_oneof![Just(-1i64), Just(1)], 0usize..2), 0..=2),
        any::<bool>(),
    )
        .prop_map(|(c, src, shifts, endoff)| Term {
            coeff: c as f64 * 0.25,
            src: if src == 0 { 0 } else { 2 },
            shifts,
            endoff,
        })
}

fn stmt_strategy() -> impl Strategy<Value = RandStmt> {
    (
        prop_oneof![Just(1usize), Just(2)],
        any::<bool>(),
        prop::collection::vec(term_strategy(), 1..=4),
        prop_oneof![
            3 => Just(None),
            1 => (0u8..6, 0usize..3).prop_map(Some),
        ],
    )
        .prop_map(|(dst, accumulate, terms, mask)| RandStmt { dst, accumulate, terms, mask })
}

fn kernel_strategy() -> impl Strategy<Value = RandKernel> {
    (
        prop_oneof![Just(6usize), Just(8), Just(9), Just(12)],
        prop::collection::vec(stmt_strategy(), 1..=4),
        prop_oneof![Just(None), Just(Some(2usize)), Just(Some(3))],
    )
        .prop_map(|(n, stmts, in_loop)| RandKernel { n, stmts, in_loop })
}

fn grid_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![1, 1]),
        Just(vec![2, 2]),
        Just(vec![1, 2]),
        Just(vec![2, 1]),
        Just(vec![3, 2]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The headline invariant: any random stencil kernel, compiled at any
    /// stage, on any grid, matches the reference interpreter exactly.
    #[test]
    fn random_kernels_match_reference(
        k in kernel_strategy(),
        grid in grid_strategy(),
        stage_idx in 0usize..5,
        threaded in any::<bool>(),
    ) {
        let src = k.source();
        let stage = Stage::all()[stage_idx];
        let kernel = Kernel::compile(&src, CompileOptions::upto(stage))
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let engine = if threaded { Engine::Threaded } else { Engine::Sequential };
        kernel
            .runner(MachineConfig::with_grid(grid.clone()))
            .init("U", |p| ((p[0] * 7 + p[1] * 3) as f64 * 0.1).sin())
            .init("V", |p| ((p[0] - p[1]) as f64 * 0.05).cos())
            .engine(engine)
            .run_verified(&["T", "V"], 1e-12)
            .unwrap_or_else(|e| panic!("stage {stage:?} grid {grid:?} failed for:\n{src}\n{e}"));
    }

    /// CSHIFT composition: shifting by a then b along one dimension equals
    /// shifting by a+b (the commutativity/composition law unioning relies
    /// on, §3.3).
    #[test]
    fn cshift_composes_additively(
        a in -9i64..9,
        b in -9i64..9,
        dim in 0usize..2,
        n in prop_oneof![Just(6usize), Just(8)],
    ) {
        const U: ArrayId = ArrayId(0);
        const X: ArrayId = ArrayId(1);
        const Y: ArrayId = ArrayId(2);
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        for (id, name) in [(U, "U"), (X, "X"), (Y, "Y")] {
            m.alloc(id, &ArrayDecl::user(name, Shape::new([n, n]), Distribution::block(2))).unwrap();
        }
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        // X = cshift(cshift(U, a), b) ; Y = cshift(U, a + b)
        m.cshift(X, U, a, dim, ShiftKind::Circular).unwrap();
        let x2 = m.gather(X);
        m.scatter(Y, &x2);
        m.cshift(X, Y, b, dim, ShiftKind::Circular).unwrap();
        m.cshift(Y, U, a + b, dim, ShiftKind::Circular).unwrap();
        prop_assert_eq!(m.gather(X), m.gather(Y));
    }

    /// CSHIFT along different dimensions commutes.
    #[test]
    fn cshift_commutes_across_dims(
        a in -3i64..=3,
        b in -3i64..=3,
    ) {
        const U: ArrayId = ArrayId(0);
        const X: ArrayId = ArrayId(1);
        const Y: ArrayId = ArrayId(2);
        let n = 8;
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        for (id, name) in [(U, "U"), (X, "X"), (Y, "Y")] {
            m.alloc(id, &ArrayDecl::user(name, Shape::new([n, n]), Distribution::block(2))).unwrap();
        }
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m.cshift(X, U, a, 0, ShiftKind::Circular).unwrap();
        m.cshift(Y, X, b, 1, ShiftKind::Circular).unwrap();
        let dim0_first = m.gather(Y);
        m.cshift(X, U, b, 1, ShiftKind::Circular).unwrap();
        m.cshift(Y, X, a, 0, ShiftKind::Circular).unwrap();
        prop_assert_eq!(dim0_first, m.gather(Y));
    }

    /// The unioning emission covers any random requirement set (the
    /// coverage invariant of §3.3).
    #[test]
    fn unioning_emission_covers_requirements(
        reqs in prop::collection::vec(
            (-2i64..=2, -2i64..=2).prop_map(|(a, b)| Offsets::new([a, b])),
            1..8,
        )
    ) {
        use hpf_stencil::passes::unioning::{covers, emit_minimal_shifts};
        let shifts = emit_minimal_shifts(ArrayId(0), ShiftKind::Circular, 2, &reqs);
        // At most one shift per direction per dimension.
        prop_assert!(shifts.len() <= 4);
        prop_assert!(covers(&shifts, &reqs), "requirements {reqs:?} not covered by {shifts:?}");
    }
}
