//! Variable-coefficient stencils: the paper's Figure 1 notes the
//! coefficients "C1–C5 are either scalars or arrays". Coefficient *arrays*
//! are aligned operands of the compute statement — no extra communication —
//! and must flow through the whole pipeline.

use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Backend, Engine, Kernel, MachineConfig};

const VARCOEFF_5PT: &str = r#"
PROGRAM varcoeff
PARAM N = 16
REAL SRC(N,N), DST(N,N)
REAL C1(N,N), C2(N,N), C3(N,N), C4(N,N), C5(N,N)
DST(2:N-1,2:N-1) = C1(2:N-1,2:N-1) * SRC(1:N-2,2:N-1) &
                 + C2(2:N-1,2:N-1) * SRC(2:N-1,1:N-2) &
                 + C3(2:N-1,2:N-1) * SRC(2:N-1,2:N-1) &
                 + C4(2:N-1,2:N-1) * SRC(3:N ,2:N-1) &
                 + C5(2:N-1,2:N-1) * SRC(2:N-1,3:N )
END
"#;

fn init_src(p: &[i64]) -> f64 {
    ((p[0] * 3 + p[1]) as f64 * 0.1).sin()
}

#[test]
fn variable_coefficient_five_point_all_stages() {
    for stage in Stage::all() {
        let kernel = Kernel::compile(VARCOEFF_5PT, CompileOptions::upto(stage)).unwrap();
        for backend in [Backend::Interp, Backend::Bytecode] {
            kernel
                .runner(MachineConfig::sp2_2x2())
                .init("SRC", init_src)
                .init("C1", |p| 0.1 + 0.001 * p[0] as f64)
                .init("C2", |p| 0.2 + 0.001 * p[1] as f64)
                .init("C3", |_| 0.4)
                .init("C4", |p| 0.2 - 0.001 * p[0] as f64)
                .init("C5", |p| 0.1 - 0.001 * p[1] as f64)
                .engine(Engine::Threaded)
                .backend(backend)
                .run_verified(&["DST"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?}/{backend:?}: {e}"));
        }
    }
}

#[test]
fn coefficient_arrays_add_no_communication() {
    let kernel = Kernel::compile(VARCOEFF_5PT, CompileOptions::full()).unwrap();
    // Still exactly 4 overlap shifts: only SRC is shifted; the coefficient
    // arrays are perfectly aligned.
    assert_eq!(kernel.stats().comm_ops, 4);
    assert_eq!(kernel.stats().nests, 1);
    // Per-point loads: 5 coefficients + 5 SRC taps (before unroll sharing).
    assert!(kernel.stats().memopt.loads_before >= 10);
}

#[test]
fn shifted_coefficient_array_communicates() {
    // A coefficient array that is itself shifted needs its own overlap area.
    let src = r#"
PARAM N = 16
REAL SRC(N,N), DST(N,N), W(N,N)
DST = CSHIFT(W,1,1) * CSHIFT(SRC,1,2) + W * SRC
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(kernel.stats().comm_ops, 2, "one shift per array");
    for backend in [Backend::Interp, Backend::Bytecode] {
        kernel
            .runner(MachineConfig::sp2_2x2())
            .init("SRC", init_src)
            .init("W", |p| (p[0] - p[1]) as f64 * 0.01)
            .backend(backend)
            .run_verified(&["DST"], 0.0)
            .unwrap_or_else(|e| panic!("{backend:?}: {e}"));
    }
}
