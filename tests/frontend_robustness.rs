//! Frontend robustness: the lexer and parser must never panic — any input,
//! however mangled, produces either a parse or a located error. Plus
//! machine-level shift semantics on randomized geometries.

use hpf_stencil::frontend;
use hpf_stencil::ir::{ArrayDecl, ArrayId, Distribution, Section, Shape, ShiftKind};
use hpf_stencil::runtime::{Machine, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary printable garbage never panics the frontend.
    #[test]
    fn frontend_never_panics_on_garbage(src in "[ -~\n]{0,200}") {
        let _ = frontend::compile_source(&src);
    }

    /// Mutations of a valid program never panic: truncations and splices.
    #[test]
    fn frontend_never_panics_on_mutations(
        cut in 0usize..400,
        splice in "[A-Z0-9 ()=+*,:<>/&!-]{0,30}",
        pos in 0usize..400,
    ) {
        let base = hpf_stencil::presets::problem9(16);
        let mut s: String = base.chars().take(cut.min(base.len())).collect();
        let pos = pos.min(s.len());
        // Splice at a char boundary (ASCII source, always aligned).
        s.insert_str(pos, &splice);
        let _ = frontend::compile_source(&s);
    }

    /// Full CSHIFT on a random 1-D geometry matches the modular formula for
    /// every element — arbitrary extents, processor counts (including empty
    /// trailing blocks), and shift amounts.
    #[test]
    fn cshift_matches_formula_on_random_geometry(
        n in 2usize..24,
        p in 1usize..6,
        shift in -30i64..30,
        endoff in any::<bool>(),
    ) {
        const U: ArrayId = ArrayId(0);
        const T: ArrayId = ArrayId(1);
        let mut m = Machine::new(MachineConfig::with_grid([p]));
        for (id, name) in [(U, "U"), (T, "T")] {
            m.alloc(id, &ArrayDecl::user(name, Shape::new([n]), Distribution::block(1)))
                .unwrap();
        }
        m.fill(U, |q| q[0] as f64);
        let kind = if endoff { ShiftKind::EndOff(-99.0) } else { ShiftKind::Circular };
        m.cshift(T, U, shift, 0, kind).unwrap();
        for i in 1..=n as i64 {
            let j = i + shift;
            let want = match kind {
                ShiftKind::Circular => ((j - 1).rem_euclid(n as i64) + 1) as f64,
                ShiftKind::EndOff(b) => {
                    if j >= 1 && j <= n as i64 { j as f64 } else { b }
                }
            };
            prop_assert_eq!(m.get(T, &[i]), want, "n={} p={} s={} i={}", n, p, shift, i);
        }
    }

    /// Overlap shifts on random 2-D geometries fill ghost cells with exactly
    /// the circular neighbours' values.
    #[test]
    fn overlap_shift_ghosts_match_wrap(
        n in 4usize..20,
        p0 in 1usize..4,
        p1 in 1usize..4,
        dir in any::<bool>(),
        dim in 0usize..2,
    ) {
        const U: ArrayId = ArrayId(0);
        let mut m = Machine::new(MachineConfig::with_grid([p0, p1]));
        m.alloc(U, &ArrayDecl::user("U", Shape::new([n, n]), Distribution::block(2)))
            .unwrap();
        // Shifts through overlap areas need a block extent of at least 1 on
        // every non-empty PE; that always holds for BLOCK.
        m.fill(U, |q| (q[0] * 1000 + q[1]) as f64);
        let s: i64 = if dir { 1 } else { -1 };
        m.overlap_shift(U, s, dim, None, ShiftKind::Circular).unwrap();
        // Check every PE's freshly filled ghost layer against the wrapped
        // global values.
        for pe in 0..m.num_pes() {
            let meta = m.meta(U).geom.clone();
            let owned = Section::new(meta.owned(pe));
            if owned.is_empty() {
                continue;
            }
            let sub = m.pes[pe].subgrid(U).clone();
            let (lo, hi) = owned.dim(dim);
            let ghost_row = if s > 0 { hi + 1 } else { lo - 1 };
            let (olo2, ohi2) = owned.dim(1 - dim);
            for other in olo2..=ohi2 {
                let mut gpt = [0i64; 2];
                gpt[dim] = ghost_row;
                gpt[1 - dim] = other;
                let local = sub.to_local(&gpt);
                let got = sub.get(&local);
                let mut src = gpt;
                src[dim] = (ghost_row - 1).rem_euclid(n as i64) + 1;
                let want = (src[0] * 1000 + src[1]) as f64;
                prop_assert_eq!(got, want, "pe={} dim={} s={} at {:?}", pe, dim, s, gpt);
            }
        }
    }
}
