//! Property tests for the persistent-schedule layer and the Plan API.
//!
//! Two invariants from the redesign:
//!
//! 1. **Overlap coverage** — the compiled schedules fill every ghost element
//!    the generated loop nests read. Verified by poisoning the overlap areas
//!    of every subgrid with `f64::MAX` before the step: any ghost read the
//!    schedules failed to fill contaminates the output, which must still
//!    match the reference interpreter exactly.
//! 2. **Iterate ≡ chained runs** — `Plan::iterate(n)` is bitwise-equal to
//!    `n` independent one-shot `Runner::run()` calls whose state is carried
//!    forward by hand, on both engines.

use hpf_stencil::passes::CompileOptions;
use hpf_stencil::{Engine, Kernel, MachineConfig};
use proptest::prelude::*;

/// One random stencil term: `coeff * CHAIN(src)`, chain of up to two unit
/// shifts, circular or end-off.
#[derive(Clone, Debug)]
struct Term {
    coeff: f64,
    src: usize, // index into NAMES
    shifts: Vec<(i64, usize)>,
    endoff: bool,
}

/// One random statement: a full-space assignment of a sum of terms,
/// optionally accumulating.
#[derive(Clone, Debug)]
struct RandStmt {
    dst: usize, // 1 = T, 2 = V
    accumulate: bool,
    terms: Vec<Term>,
}

#[derive(Clone, Debug)]
struct RandKernel {
    n: usize,
    stmts: Vec<RandStmt>,
    in_loop: Option<usize>,
}

const NAMES: [&str; 3] = ["U", "T", "V"];

impl RandKernel {
    fn source(&self) -> String {
        let mut s = format!("PROGRAM rand\nPARAM N = {}\nREAL U(N,N), T(N,N), V(N,N)\n", self.n);
        let mut body = String::new();
        for st in &self.stmts {
            let dst = NAMES[st.dst];
            let mut rhs = if st.accumulate { dst.to_string() } else { String::new() };
            for t in &st.terms {
                let mut operand = NAMES[t.src].to_string();
                for (amt, dim) in &t.shifts {
                    let intr = if t.endoff { "EOSHIFT" } else { "CSHIFT" };
                    operand = format!("{intr}({operand},{amt},{})", dim + 1);
                }
                let term = format!("{} * {operand}", t.coeff);
                rhs = if rhs.is_empty() { term } else { format!("{rhs} + {term}") };
            }
            if rhs.is_empty() {
                rhs = "0".to_string();
            }
            body.push_str(&format!("{dst} = {rhs}\n"));
        }
        if let Some(iters) = self.in_loop {
            s.push_str(&format!("DO {iters} TIMES\n{body}ENDDO\n"));
        } else {
            s.push_str(&body);
        }
        s.push_str("END\n");
        s
    }
}

fn term_strategy() -> impl Strategy<Value = Term> {
    (
        -4i32..=4,
        0usize..2,
        prop::collection::vec((prop_oneof![Just(-1i64), Just(1)], 0usize..2), 0..=2),
        any::<bool>(),
    )
        .prop_map(|(c, src, shifts, endoff)| Term {
            coeff: c as f64 * 0.25,
            src: if src == 0 { 0 } else { 2 },
            shifts,
            endoff,
        })
}

fn stmt_strategy() -> impl Strategy<Value = RandStmt> {
    (
        prop_oneof![Just(1usize), Just(2)],
        any::<bool>(),
        prop::collection::vec(term_strategy(), 1..=4),
    )
        .prop_map(|(dst, accumulate, terms)| RandStmt { dst, accumulate, terms })
}

fn kernel_strategy() -> impl Strategy<Value = RandKernel> {
    (
        prop_oneof![Just(6usize), Just(8), Just(12)],
        prop::collection::vec(stmt_strategy(), 1..=3),
        prop_oneof![Just(None), Just(Some(2usize)), Just(Some(3))],
    )
        .prop_map(|(n, stmts, in_loop)| RandKernel { n, stmts, in_loop })
}

fn grid_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![1, 1]),
        Just(vec![2, 2]),
        Just(vec![1, 2]),
        Just(vec![2, 1]),
        Just(vec![3, 2]),
    ]
}

fn init_u(p: &[i64]) -> f64 {
    ((p[0] * 7 + p[1] * 3) as f64 * 0.1).sin()
}

fn init_v(p: &[i64]) -> f64 {
    ((p[0] - p[1]) as f64 * 0.05).cos()
}

/// Dense row-major field of an init function over an n×n global array.
fn dense(n: usize, f: impl Fn(&[i64]) -> f64) -> Vec<f64> {
    let mut v = vec![0.0; n * n];
    for (i, slot) in v.iter_mut().enumerate() {
        *slot = f(&[(i / n + 1) as i64, (i % n + 1) as i64]);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Invariant 1: the schedules' filled overlap regions are a superset of
    /// the ghost elements the loop nests read — poisoned halos never leak.
    #[test]
    fn poisoned_halos_never_leak(
        k in kernel_strategy(),
        grid in grid_strategy(),
        threaded in any::<bool>(),
    ) {
        let src = k.source();
        let kernel = Kernel::compile(&src, CompileOptions::full())
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let engine = if threaded { Engine::Threaded } else { Engine::Sequential };
        let mut plan = kernel
            .plan(MachineConfig::grid(grid.clone()))
            .init("U", init_u)
            .init("V", init_v)
            .engine(engine)
            .build()
            .unwrap_or_else(|e| panic!("build failed for:\n{src}\n{e}"));
        plan.machine.poison_halos(f64::MAX);
        plan.step();
        let oracle = kernel.oracle().init("U", init_u).init("V", init_v).run();
        for name in ["U", "T", "V"] {
            let id = kernel.array_id(name).unwrap();
            if !plan.machine.is_allocated(id) {
                continue; // array never referenced by this random kernel
            }
            let got = plan.gather(name).unwrap();
            prop_assert_eq!(
                &got,
                &oracle.arrays[&id].data,
                "poison leaked into {} (engine {:?}, grid {:?}) for:\n{}",
                name, engine, &grid, &src
            );
        }
    }

    /// Invariant 2: `Plan::iterate(n)` equals `n` chained one-shot
    /// `Runner::run()` calls bit for bit, on both engines.
    #[test]
    fn iterate_equals_chained_runs(
        k in kernel_strategy(),
        grid in grid_strategy(),
        steps in 1usize..=3,
        threaded in any::<bool>(),
    ) {
        let src = k.source();
        let kernel = Kernel::compile(&src, CompileOptions::full())
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let engine = if threaded { Engine::Threaded } else { Engine::Sequential };
        let mut plan = kernel
            .plan(MachineConfig::grid(grid.clone()))
            .init("U", init_u)
            .init("V", init_v)
            .engine(engine)
            .build()
            .unwrap_or_else(|e| panic!("build failed for:\n{src}\n{e}"));
        plan.iterate(steps);

        // Chained one-shot runs carrying every allocated array forward by
        // hand. T starts zero, exactly as a fresh machine allocates it.
        let n = k.n;
        let live: Vec<&str> = NAMES
            .iter()
            .copied()
            .filter(|name| plan.machine.is_allocated(kernel.array_id(name).unwrap()))
            .collect();
        let mut state: Vec<Vec<f64>> = live
            .iter()
            .map(|&name| match name {
                "U" => dense(n, init_u),
                "V" => dense(n, init_v),
                _ => dense(n, |_| 0.0),
            })
            .collect();
        for _ in 0..steps {
            let mut r = kernel.runner(MachineConfig::grid(grid.clone()));
            for (name, field) in live.iter().zip(&state) {
                let f = field.clone();
                r = r.init(name, move |p| f[(p[0] - 1) as usize * n + (p[1] - 1) as usize]);
            }
            let run = r.engine(engine).run()
                .unwrap_or_else(|e| panic!("run failed for:\n{src}\n{e}"));
            for (name, field) in live.iter().zip(state.iter_mut()) {
                *field = run.gather(&kernel, name);
            }
        }
        for (name, field) in live.iter().zip(&state) {
            prop_assert_eq!(
                &plan.gather(name).unwrap(),
                field,
                "{} diverged after {} steps (engine {:?}, grid {:?}) for:\n{}",
                name, steps, engine, &grid, &src
            );
        }
    }

    /// Schedule accounting: compiled once at build, reused uniformly on
    /// every step, with no buffer growth.
    #[test]
    fn schedules_built_once_and_reused(
        k in kernel_strategy(),
        grid in grid_strategy(),
        steps in 1usize..=4,
    ) {
        let src = k.source();
        let kernel = Kernel::compile(&src, CompileOptions::full())
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let mut plan = kernel
            .plan(MachineConfig::grid(grid.clone()))
            .init("U", init_u)
            .init("V", init_v)
            .build()
            .unwrap();
        let pooled = plan.pooled_bytes();
        plan.iterate(steps);
        let st = plan.stats();
        prop_assert_eq!(st.schedules_built as usize, plan.comm_count());
        prop_assert_eq!(plan.pooled_bytes(), pooled, "no per-step buffer growth");
        if st.schedules_built > 0 {
            // Every step executes the same schedule sequence: the reuse
            // count is steps x (executions per step), and every compiled
            // schedule runs at least once per step.
            prop_assert_eq!(st.schedule_reuses % steps as u64, 0);
            prop_assert!(st.schedule_reuses / steps as u64 >= st.schedules_built);
        } else {
            prop_assert_eq!(st.schedule_reuses, 0);
        }
    }
}
