//! Rank coverage: the paper's examples are 2-D, but nothing in the strategy
//! is rank-specific — these tests run 1-D and 3-D stencils through the full
//! pipeline on matching PE meshes.

use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Engine, Kernel, MachineConfig};

fn init1(p: &[i64]) -> f64 {
    (p[0] as f64 * 0.37).sin()
}

fn init3(p: &[i64]) -> f64 {
    ((p[0] * 9 + p[1] * 5 + p[2] * 2) as f64 * 0.05).cos()
}

#[test]
fn one_dimensional_three_point() {
    let src = r#"
PROGRAM tridiag
PARAM N = 32
REAL U(N), T(N)
REAL A = 0.25, B = 0.5, C = 0.25
T = A * CSHIFT(U,-1,1) + B * U + C * CSHIFT(U,1,1)
END
"#;
    for stage in Stage::all() {
        for grid in [&[1usize][..], &[2], &[4], &[5]] {
            let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
            kernel
                .runner(MachineConfig::with_grid(grid.to_vec()))
                .init("U", init1)
                .run_verified(&["T"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?} {grid:?}: {e}"));
        }
    }
    // Structure: 2 shifts stay 2 (one per direction), single fused nest.
    let k = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(k.stats().comm_ops, 2);
    assert_eq!(k.stats().nests, 1);
}

#[test]
fn one_dimensional_wide_stencil_with_halo_two() {
    let src = r#"
PARAM N = 24
REAL U(N), T(N)
T = CSHIFT(U,-2,1) + CSHIFT(U,-1,1) + U + CSHIFT(U,1,1) + CSHIFT(U,2,1)
"#;
    let kernel = Kernel::compile(src, CompileOptions::full().halo(2)).unwrap();
    let run = kernel
        .runner(MachineConfig::with_grid([4]).halo(2))
        .init("U", init1)
        .engine(Engine::Threaded)
        .run_verified(&["T"], 0.0)
        .unwrap();
    // Subsumption: the ±2 shifts subsume the ±1 shifts -> 2 messages/PE.
    assert_eq!(kernel.stats().comm_ops, 2);
    assert_eq!(run.stats().total_messages(), 8);
}

#[test]
fn three_dimensional_seven_point() {
    let src = r#"
PROGRAM heat3d
PARAM N = 8
REAL U(N,N,N), T(N,N,N)
REAL C = 0.125
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) &
  + CSHIFT(U,-1,2) + CSHIFT(U,1,3) + CSHIFT(U,-1,3)) + 0.25 * U
"#;
    for stage in Stage::all() {
        for grid in [&[1usize, 1, 1][..], &[2, 2, 2], &[2, 1, 2], &[1, 4, 1]] {
            let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
            kernel
                .runner(MachineConfig::with_grid(grid.to_vec()))
                .init("U", init3)
                .run_verified(&["T"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?} {grid:?}: {e}"));
        }
    }
    let k = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(k.stats().comm_ops, 6, "one per direction per dimension");
    assert_eq!(k.stats().nests, 1);
}

#[test]
fn three_dimensional_corner_stencil() {
    // A 3-D diagonal term exercises cascading RSDs across two lower dims.
    let src = r#"
PARAM N = 8
REAL U(N,N,N), T(N,N,N)
T = U + CSHIFT(CSHIFT(CSHIFT(U,1,1),1,2),1,3) + CSHIFT(U,-1,2)
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    let run = kernel
        .runner(MachineConfig::with_grid([2, 2, 2]))
        .init("U", init3)
        .engine(Engine::Threaded)
        .run_verified(&["T"], 0.0)
        .unwrap();
    // Shifts: +1 along each dim (3 ops) + -1 along dim 2 (1 op).
    assert_eq!(kernel.stats().comm_ops, 4);
    assert!(run.stats().total_messages() > 0);
    // The dim-3 shift's RSD extends both lower dimensions.
    let listing = kernel.listing();
    assert!(
        listing.contains("DIM=3,[1-0:n+1,1-0:n+1,*]"),
        "cascaded corner RSD expected:\n{listing}"
    );
}

#[test]
fn three_dimensional_time_loop() {
    let src = r#"
PARAM N = 6
REAL U(N,N,N), T(N,N,N)
DO 4 TIMES
T = 0.16 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) &
  + CSHIFT(U,-1,2) + CSHIFT(U,1,3) + CSHIFT(U,-1,3))
U = T
ENDDO
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    kernel
        .runner(MachineConfig::with_grid([2, 2, 2]))
        .init("U", init3)
        .engine(Engine::Threaded)
        .run_verified(&["U"], 0.0)
        .unwrap();
}

#[test]
fn rank_mismatch_with_machine_grid_errors() {
    let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U,1,1)\n";
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    let err = kernel.runner(MachineConfig::with_grid([4])).init("U", |_| 1.0).run();
    assert!(err.is_err(), "2-D arrays on a 1-D mesh must be rejected");
}

#[test]
fn required_halo_reflects_offsets() {
    use hpf_stencil::CompileOptions;
    let one = Kernel::compile(
        "PARAM N = 16\nREAL U(N,N), T(N,N)\nT = CSHIFT(U,1,1) + U\n",
        CompileOptions::full(),
    )
    .unwrap();
    assert_eq!(one.compiled.required_halo(), 1);
    let two = Kernel::compile(
        "PARAM N = 16\nREAL U(N,N), T(N,N)\nT = CSHIFT(U,2,1) + U\n",
        CompileOptions::full().halo(2),
    )
    .unwrap();
    assert_eq!(two.compiled.required_halo(), 2);
    // Running the halo-2 kernel on a halo-1 machine errors cleanly.
    let err = two.runner(MachineConfig::sp2_2x2()).init("U", init1).run();
    assert!(err.is_err(), "undersized halo must be rejected");
}
