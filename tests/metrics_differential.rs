//! Differential testing of the metrics subsystem: collecting per-PE
//! metrics must be **observation only**. For every engine × backend
//! combination (and randomly drawn kernels, sizes, and step counts), a
//! metered run and an unmetered run of the same kernel must produce
//! bitwise-identical arrays and identical per-PE operation counters —
//! the sampler may read the trace rings but never perturb execution.
//! The drift report must reconcile exactly with its sources: its
//! `modeled_time_ns` equals `CostModel::modeled_time_ns` on the run's
//! aggregate counters and its `hidden_comm_ns` equals the sum of
//! `AggStats::hidden_comm_ns`. Metrics-owned tracing must stay invisible
//! to trace consumers.

use hpf_stencil::runtime::PeStats;
use hpf_stencil::{
    presets, Backend, CompileOptions, Engine, ExecConfig, Kernel, MachineConfig, MetricsSnapshot,
};
use proptest::prelude::*;

const COMBOS: [(Engine, Backend); 6] = [
    (Engine::Sequential, Backend::Interp),
    (Engine::Sequential, Backend::Bytecode),
    (Engine::Threaded, Backend::Interp),
    (Engine::Threaded, Backend::Bytecode),
    (Engine::ThreadedOverlap, Backend::Interp),
    (Engine::ThreadedOverlap, Backend::Bytecode),
];

/// Step the kernel `steps` times under `cfg`, initializing `input`;
/// return the gathered `out` array, the per-PE counters, and the metrics
/// snapshot (when on).
fn run_case(
    kernel: &Kernel,
    input: &str,
    out: &str,
    cfg: ExecConfig,
    steps: usize,
) -> (Vec<f64>, Vec<PeStats>, Option<MetricsSnapshot>) {
    let mut plan = kernel
        .plan(MachineConfig::sp2_2x2())
        .init(input, |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin())
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{cfg:?} failed to build: {e}"));
    plan.iterate(steps);
    let data = plan.gather(out).unwrap();
    let stats = plan.stats().per_pe;
    let snap = plan.metrics_snapshot();
    (data, stats, snap)
}

/// Metrics on vs off is invisible to the computation: bitwise-identical
/// arrays and identical per-PE counters across the whole engine × backend
/// matrix.
#[test]
fn metrics_never_perturb_execution() {
    let kernel = Kernel::compile(&presets::problem9(24), CompileOptions::full()).unwrap();
    for (engine, backend) in COMBOS {
        let base = ExecConfig::new().engine(engine).backend(backend);
        let (out_off, stats_off, snap_off) = run_case(&kernel, "U", "T", base, 3);
        let (out_on, stats_on, snap_on) = run_case(&kernel, "U", "T", base.metrics(true), 3);
        assert_eq!(out_off, out_on, "metered run diverged bitwise under {engine:?}/{backend:?}");
        assert_eq!(
            stats_off, stats_on,
            "metered run changed per-PE counters under {engine:?}/{backend:?}"
        );
        assert!(snap_off.is_none(), "unmetered run produced a snapshot");
        let snap = snap_on.unwrap_or_else(|| panic!("no snapshot under {engine:?}/{backend:?}"));
        assert_eq!(snap.steps, 3);
        assert_eq!(snap.pes, 4);
        assert_eq!(snap.series.len(), 3);
        let spans: u64 = snap.merged_pe_registry().hists().map(|(_, h)| h.count()).sum();
        assert!(spans > 0, "no spans sampled under {engine:?}/{backend:?}");
    }
}

/// The drift report's totals reconcile exactly — not approximately — with
/// the cost model and the counters, per engine × backend.
#[test]
fn drift_report_reconciles_with_cost_model_and_counters() {
    let kernel = Kernel::compile(&presets::jacobi(16, 3), CompileOptions::full()).unwrap();
    for (engine, backend) in COMBOS {
        let cfg = ExecConfig::new().engine(engine).backend(backend).metrics(true);
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("U", |p| ((p[0] + 2 * p[1]) as f64 * 0.07).cos())
            .config(cfg)
            .build()
            .unwrap();
        plan.iterate(4);
        let drift = plan.drift_report().expect("metrics were configured");
        let agg = plan.stats();
        let cost = &plan.machine.cfg.cost;
        assert_eq!(
            drift.modeled_time_ns,
            cost.modeled_time_ns(&agg),
            "modeled total diverged under {engine:?}/{backend:?}"
        );
        assert_eq!(
            drift.hidden_comm_ns,
            agg.hidden_comm_ns.iter().sum::<f64>(),
            "hidden credit diverged under {engine:?}/{backend:?}"
        );
        // Every component pairs a finite modeled cost with a finite
        // measured wall; the measured side never exceeds... nothing — it
        // is host time — but it must be non-negative and the report must
        // price the compute component (every engine computes).
        for c in &drift.components {
            assert!(c.modeled_ns >= 0.0 && c.measured_ns >= 0.0, "{engine:?}/{backend:?}");
        }
        let compute = drift.components.iter().find(|c| c.name == "compute").unwrap();
        assert!(compute.modeled_ns > 0.0, "no modeled compute under {engine:?}/{backend:?}");
        assert!(compute.measured_ns > 0.0, "no measured compute under {engine:?}/{backend:?}");
        // The exports are well-formed: JSON round-trips through the shared
        // parser, the Prometheus exposition carries per-PE labels.
        let snap = plan.metrics_snapshot().unwrap();
        let j = snap.to_json();
        let back = hpf_stencil::trace::json::parse(&j.render()).unwrap();
        assert_eq!(back.render(), j.render(), "{engine:?}/{backend:?}");
        let dj = drift.to_json();
        let dback = hpf_stencil::trace::json::parse(&dj.render()).unwrap();
        assert_eq!(dback.render(), dj.render(), "{engine:?}/{backend:?}");
        assert!(snap.to_prometheus().contains("pe=\"3\""), "{engine:?}/{backend:?}");
    }
}

/// Metrics-owned tracing stays invisible: no trace on the run, empty
/// `take_trace`, `tracing_enabled` false — while an explicitly traced
/// run keeps its trace alongside the metrics.
#[test]
fn metrics_owned_rings_stay_invisible_to_trace_consumers() {
    let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    let init = |p: &[i64]| ((p[0] * 3 - p[1]) as f64 * 0.11).sin();
    let metered =
        kernel.runner(MachineConfig::sp2_2x2()).init("U", init).metrics(true).run().unwrap();
    assert!(metered.trace.is_none(), "metrics alone surfaced a trace");
    assert!(metered.metrics.is_some() && metered.drift.is_some());
    let both = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", init)
        .metrics(true)
        .trace(true)
        .run()
        .unwrap();
    let trace = both.trace.as_ref().expect("tracing was configured");
    assert!(trace.total_events() > 0);
    assert!(both.metrics.is_some() && both.drift.is_some());
    // Both runs computed the same thing.
    assert_eq!(metered.gather(&kernel, "T"), both.gather(&kernel, "T"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Randomized observation-only check: random preset kernel, problem
    /// size, step count, engine, and backend — metrics on vs off stays
    /// bitwise identical, and the superstep schedule keeps the invariant
    /// too.
    #[test]
    fn random_runs_are_bitwise_identical_with_metrics(
        which in 0usize..3,
        n_idx in 0usize..3,
        steps in 1usize..4,
        combo in 0usize..COMBOS.len(),
        superstep in prop_oneof![Just(1usize), Just(2)],
    ) {
        let n = [12, 16, 24][n_idx];
        let (src, input, out) = match which {
            0 => (presets::problem9(n), "U", "T"),
            1 => (presets::jacobi(n, 3), "U", "U"),
            _ => (presets::five_point(n), "SRC", "DST"),
        };
        let kernel = Kernel::compile(&src, CompileOptions::full()).unwrap();
        let (engine, backend) = COMBOS[combo];
        let base = ExecConfig::new().engine(engine).backend(backend).superstep(superstep);
        let (out_off, stats_off, _) = run_case(&kernel, input, out, base, steps);
        let (out_on, stats_on, snap) = run_case(&kernel, input, out, base.metrics(true), steps);
        prop_assert_eq!(out_off, out_on);
        prop_assert_eq!(stats_off, stats_on);
        prop_assert_eq!(snap.unwrap().steps, steps as u64);
    }
}
