//! Semantic-equivalence property tests for the loop-level memory optimizer:
//! scalar replacement and unroll-and-jam must never change what a loop nest
//! computes, for *any* body — including pathological aliasing patterns
//! (repeated stores to one element, loads between stores, reductions into
//! the loaded array) that the named kernels never produce.

use hpf_stencil::exec::nest::exec_nest;
use hpf_stencil::ir::{ArrayDecl, ArrayId, BinOp, Distribution, Section, Shape};
use hpf_stencil::passes::loopir::{Instr, LoopNest};
use hpf_stencil::passes::memopt;
use hpf_stencil::runtime::{Machine, MachineConfig};
use proptest::prelude::*;

const A: ArrayId = ArrayId(0);
const B: ArrayId = ArrayId(1);
const C: ArrayId = ArrayId(2);

/// Generator for a valid body in SSA-ish form: instruction `i` defines
/// register `i`; operands come from earlier registers; stores pick any
/// defined register and any array/offset.
#[derive(Clone, Debug)]
enum GenInstr {
    Const(f64),
    Load(u8, [i64; 2]),
    Bin(u8, u16, u16),
    Neg(u16),
    Store(u8, [i64; 2], u16),
}

fn instr_strategy(max_reg: u16) -> impl Strategy<Value = GenInstr> {
    let reg = 0..max_reg.max(1);
    let arr = 0u8..3;
    let off = prop::array::uniform2(-1i64..=1);
    // Stores are biased toward offset [0,0] so that a good share of the
    // generated bodies have only iteration-local dependences (the case the
    // optimizer actually transforms); the rest exercise the legality guard.
    let store_off = prop_oneof![3 => Just([0i64, 0]), 1 => off.clone()];
    prop_oneof![
        (-4i32..=4).prop_map(|v| GenInstr::Const(v as f64 * 0.5)),
        (arr.clone(), off.clone()).prop_map(|(a, o)| GenInstr::Load(a, o)),
        (0u8..4, reg.clone(), reg.clone()).prop_map(|(op, a, b)| GenInstr::Bin(op, a, b)),
        reg.clone().prop_map(GenInstr::Neg),
        (arr, store_off, reg).prop_map(|(a, o, r)| GenInstr::Store(a, o, r)),
    ]
}

fn body_strategy() -> impl Strategy<Value = Vec<Instr>> {
    prop::collection::vec(any::<u8>(), 4..24).prop_flat_map(|seed| {
        let n = seed.len() as u16;
        prop::collection::vec(instr_strategy(n), seed.len()..=seed.len()).prop_map(move |gens| {
            let mut out = Vec::new();
            // Registers that have a defining instruction. Reads must come
            // from this set: like real pipeline bodies, a register is never
            // read before it is written (an undefined register's content is
            // whatever the previous body execution left, which legitimately
            // differs between register numberings).
            let mut defined: Vec<u16> = Vec::new();
            for (i, g) in gens.into_iter().enumerate() {
                let dst = i as u16;
                let defined_now = defined.clone();
                let clamp = move |r: u16| {
                    if defined_now.is_empty() {
                        0
                    } else {
                        defined_now[r as usize % defined_now.len()]
                    }
                };
                let instr = match g {
                    GenInstr::Const(v) => Instr::Const { dst, value: v },
                    GenInstr::Load(a, o) => {
                        Instr::Load { dst, array: ArrayId(a as u32), offsets: o.to_vec() }
                    }
                    GenInstr::Bin(op, x, y) => {
                        if defined.is_empty() {
                            Instr::Const { dst, value: 1.0 }
                        } else {
                            let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Add];
                            Instr::Bin { op: ops[op as usize % 4], dst, a: clamp(x), b: clamp(y) }
                        }
                    }
                    GenInstr::Neg(x) => {
                        if defined.is_empty() {
                            Instr::Const { dst, value: -1.0 }
                        } else {
                            Instr::Neg { dst, src: clamp(x) }
                        }
                    }
                    GenInstr::Store(a, o, r) => {
                        if defined.is_empty() {
                            Instr::Const { dst, value: 0.0 }
                        } else {
                            out.push(Instr::Store {
                                array: ArrayId(a as u32),
                                offsets: o.to_vec(),
                                src: clamp(r),
                            });
                            continue;
                        }
                    }
                };
                defined.push(dst);
                out.push(instr);
            }
            // Make sure there is at least one array access so exec_nest can
            // derive the geometry, and one store so the body is observable.
            out.push(Instr::Load { dst: n, array: A, offsets: vec![0, 0] });
            out.push(Instr::Store { array: B, offsets: vec![0, 0], src: n });
            out
        })
    })
}

/// Run one nest on a fresh machine and gather all three arrays.
fn run_nest(nest: &LoopNest) -> Vec<Vec<f64>> {
    let mut m = Machine::new(MachineConfig::sp2_2x2());
    for (id, name) in [(A, "A"), (B, "B"), (C, "C")] {
        m.alloc(id, &ArrayDecl::user(name, Shape::new([8, 8]), Distribution::block(2))).unwrap();
        m.fill(id, |p| ((p[0] * 31 + p[1] * 17 + id.0 as i64 * 7) % 13) as f64 - 6.0);
    }
    // Deterministic halo contents too (offset loads may read ghosts).
    for id in [A, B, C] {
        m.overlap_shift(id, 1, 0, None, hpf_stencil::ir::ShiftKind::Circular).unwrap();
        m.overlap_shift(id, -1, 0, None, hpf_stencil::ir::ShiftKind::Circular).unwrap();
        let mut rsd = hpf_stencil::ir::Rsd::none(2);
        rsd.extend(0, -1);
        rsd.extend(0, 1);
        m.overlap_shift(id, 1, 1, Some(&rsd), hpf_stencil::ir::ShiftKind::Circular).unwrap();
        m.overlap_shift(id, -1, 1, Some(&rsd), hpf_stencil::ir::ShiftKind::Circular).unwrap();
    }
    for pe in 0..4 {
        exec_nest(&mut m.pes[pe], nest, &[]);
    }
    [A, B, C].iter().map(|id| m.gather(*id)).collect()
}

fn nest_from(body: Vec<Instr>, order: Vec<usize>) -> LoopNest {
    let regs = body.iter().filter_map(|i| i.dst()).max().map_or(0, |r| r as usize + 1);
    LoopNest {
        // Interior space: offset accesses stay within the halo.
        space: Section::new([(2, 7), (2, 7)]),
        order,
        body,
        regs,
        unroll: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Scalar replacement preserves semantics for arbitrary bodies.
    #[test]
    fn scalar_replacement_preserves_semantics(body in body_strategy()) {
        let nest = nest_from(body, vec![0, 1]);
        let mut optimized = nest.clone();
        memopt::scalar_replace(&mut optimized);
        prop_assert_eq!(run_nest(&nest), run_nest(&optimized));
        // And it never increases memory traffic.
        prop_assert!(optimized.loads_per_point() <= nest.loads_per_point());
        prop_assert!(optimized.stores_per_point() <= nest.stores_per_point());
    }

    /// Unroll-and-jam (with the remainder path) preserves semantics for any
    /// factor, including factors that do not divide the extents.
    #[test]
    fn unroll_and_jam_preserves_semantics(
        body in body_strategy(),
        factor in 2usize..=5,
    ) {
        let nest = nest_from(body, vec![0, 1]);
        let mut unrolled = nest.clone();
        memopt::unroll_and_jam(&mut unrolled, factor);
        prop_assert_eq!(run_nest(&nest), run_nest(&unrolled));
    }

    /// The full memopt pipeline (permute + SR + unroll + SR) preserves
    /// semantics.
    #[test]
    fn combined_memopt_preserves_semantics(
        body in body_strategy(),
        fortran_order in any::<bool>(),
        factor in 1usize..=4,
    ) {
        // NOTE: permutation legality in general requires iteration-local
        // dependences; arbitrary random bodies can carry cross-iteration
        // dependences (store then load at different offsets), so keep the
        // original loop order here and only exercise SR + unroll.
        let order = if fortran_order { vec![1, 0] } else { vec![0, 1] };
        let nest = nest_from(body, order);
        let mut optimized = nest.clone();
        memopt::scalar_replace(&mut optimized);
        if factor > 1 {
            memopt::unroll_and_jam(&mut optimized, factor);
            let (b, r) = memopt::scalar_replace_body(&optimized.body, optimized.regs);
            optimized.body = b;
            optimized.regs = r;
        }
        prop_assert_eq!(run_nest(&nest), run_nest(&optimized));
    }
}
