//! Mutation-kill suite for the static verification layer.
//!
//! Two properties, exercised from outside the compiler:
//!
//! 1. **Soundness in practice** — every kernel the compiler emits, for
//!    every preset and for random workloads across the full
//!    engine × backend matrix, verifies clean (`verify_nest` /
//!    `Plan::verify_static` return no diagnostics). A verifier that
//!    rejects correct output is useless as a build-time gate.
//!
//! 2. **Sensitivity** — every deliberate corruption of a compiled kernel
//!    ([`Fault`] injection: reordered ops, perturbed memory deltas,
//!    widened loop bounds, shrunk declared envelopes, retargeted
//!    registers, forced vectorization) and of an execution plan
//!    (cleared drain barriers, widened interior sweeps, duplicated
//!    buffer posts, widened superstep trapezoids) is rejected with the
//!    matching `BV*` / `PL*` diagnostic. A verifier that misses the
//!    faults it was built to catch is equally useless.

use hpf_bench::workload::{generate, WorkloadSpec};
use hpf_stencil::codegen::{compile_nest, verify_nest, CompiledNest, Fault};
use hpf_stencil::exec::nest::scalar_values;
use hpf_stencil::passes::{CompileOptions, NodeItem};
use hpf_stencil::{presets, Backend, Engine, ExecConfig, Kernel, Machine, MachineConfig};
use proptest::prelude::*;

/// Compile `src` through the full pipeline and return every bytecode
/// kernel the plan builder would produce: one per (nest, PE) pair that the
/// specializer accepts.
fn kernels_of(src: &str, grid: &[usize]) -> Vec<CompiledNest> {
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    let mut machine = Machine::new(MachineConfig::with_grid(grid.to_vec()));
    hpf_stencil::exec::allocate(&mut machine, &kernel.compiled.node).unwrap();
    let scalars = scalar_values(&kernel.compiled.node.symbols);
    let mut out = Vec::new();
    kernel.compiled.node.for_each_item(&mut |it| {
        if let NodeItem::Nest(nest) = it {
            out.extend(machine.pes.iter().filter_map(|pe| compile_nest(nest, pe, &scalars)));
        }
    });
    out
}

/// Every preset kernel on single-PE and 2×2 grids: the corpus the
/// mutation tests inject faults into.
fn corpus() -> Vec<CompiledNest> {
    let sources = [
        presets::five_point(16),
        presets::nine_point_cshift(16),
        presets::nine_point_array(16),
        presets::problem9(16),
        presets::jacobi(16, 3),
        presets::image_blur(16, 2),
        presets::wave2d(16, 2),
    ];
    let mut all = Vec::new();
    for src in &sources {
        for grid in [&[1usize, 1][..], &[2, 2][..]] {
            all.extend(kernels_of(src, grid));
        }
    }
    assert!(!all.is_empty(), "presets must produce bytecode kernels");
    all
}

/// Does the verifier reject this kernel with one of `codes`?
fn rejected_with(cn: &CompiledNest, codes: &[&str]) -> bool {
    verify_nest(cn).iter().any(|d| codes.contains(&d.code))
}

#[test]
fn compiler_emitted_kernels_verify_clean() {
    for cn in corpus() {
        let diags = verify_nest(&cn);
        assert!(diags.is_empty(), "compiler-emitted kernel rejected: {diags:?}");
    }
}

/// Reordering a definition after its use must trip BV001. Strict-mode
/// kernels legitimately read registers carried across iterations, so only
/// fast-mode kernels make the def-before-use discipline checkable; for
/// each of those, some adjacent swap must be caught.
#[test]
fn swapped_ops_are_killed() {
    let mut eligible = 0usize;
    for cn in corpus().iter().filter(|cn| !cn.strict()) {
        let mut applied = false;
        let mut caught = false;
        for i in 0usize.. {
            let mut m = cn.clone();
            if !m.inject(Fault::SwapOps { unit: false, i, j: i + 1 }) {
                break;
            }
            applied = true;
            if !verify_nest(&m).is_empty() {
                caught = true;
                break;
            }
        }
        if applied {
            eligible += 1;
            assert!(caught, "no adjacent op swap was rejected for a fast-mode kernel");
        }
    }
    assert!(eligible > 0, "corpus must contain swappable fast-mode kernels");
}

/// A memory delta pushed far outside the declared envelope must trip the
/// bounds proof (BV003) on every kernel, at every memory op, in both
/// bodies.
#[test]
fn perturbed_deltas_are_killed() {
    let mut applied = 0usize;
    for cn in corpus() {
        for unit in [false, true] {
            for i in 0usize.. {
                let mut m = cn.clone();
                if !m.inject(Fault::PerturbDelta { unit, i, by: 1_000_000 }) {
                    break;
                }
                applied += 1;
                assert!(
                    rejected_with(&m, &["BV003"]),
                    "perturbed delta survived verification (mem op {i}, unit={unit})"
                );
            }
        }
    }
    assert!(applied > 0, "corpus must contain memory ops to perturb");
}

/// Widened loop bounds walk rows past the subgrid allocation: BV003 on
/// every kernel, in every dimension.
#[test]
fn widened_bounds_are_killed() {
    let mut applied = 0usize;
    for cn in corpus() {
        for dim in 0..4 {
            let mut m = cn.clone();
            if !m.inject(Fault::WidenBounds { dim, by: 1_000_000 }) {
                continue;
            }
            applied += 1;
            assert!(
                rejected_with(&m, &["BV003"]),
                "widened bound survived verification (dim {dim})"
            );
        }
    }
    assert!(applied > 0, "corpus must contain kernels with widenable bounds");
}

/// A shrunk declared envelope makes the hoisted per-row proof cover
/// nothing while the ops still reach into the halo: BV003.
#[test]
fn shrunk_declared_envelopes_are_killed() {
    let mut applied = 0usize;
    for cn in corpus() {
        for unit in [false, true] {
            let mut m = cn.clone();
            if !m.inject(Fault::ShrinkDeclaredDeltas { unit }) {
                continue;
            }
            applied += 1;
            assert!(
                rejected_with(&m, &["BV003"]),
                "shrunk declared envelope survived verification (unit={unit})"
            );
        }
    }
    assert!(applied > 0, "corpus must contain kernels with nonzero deltas");
}

/// A source operand retargeted outside the register file must trip BV001
/// in strict and fast mode alike.
#[test]
fn retargeted_registers_are_killed() {
    let mut applied = 0usize;
    for cn in corpus() {
        for i in 0usize..64 {
            let mut m = cn.clone();
            if !m.inject(Fault::RetargetReg { unit: false, i, reg: u16::MAX }) {
                continue;
            }
            applied += 1;
            assert!(
                rejected_with(&m, &["BV001"]),
                "out-of-range register operand survived verification (op {i})"
            );
        }
    }
    assert!(applied > 0, "corpus must contain retargetable ops");
}

/// Claiming chunk safety the aliasing test does not prove must trip BV004
/// (or BV002 on a strict kernel, where vectorization is banned outright).
/// The verifier re-derives the same criterion the compiler decides with,
/// so a kernel the compiler left scalar is exactly one the claim is wrong
/// for.
#[test]
fn forced_vectorization_is_killed() {
    let mut applied = 0usize;
    for cn in corpus() {
        let mut m = cn.clone();
        if !m.inject(Fault::ForceVectorized) {
            continue;
        }
        applied += 1;
        assert!(
            rejected_with(&m, &["BV004", "BV002"]),
            "forced vectorization survived verification"
        );
    }
    assert!(applied > 0, "corpus must contain scalar kernels");
}

/// The 9-point star via shifted temporaries: its overlap windows carry
/// corner-forwarding drain dependencies, so the plan-level faults below
/// all have something to corrupt.
const NINE_POINT16: &str = "\
PARAM N = 16
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN + CSHIFT(U,-1,2) + CSHIFT(U,1,2) + CSHIFT(RIP,-1,2) + CSHIFT(RIP,1,2) + CSHIFT(RIN,-1,2) + CSHIFT(RIN,1,2)
U = T
";

fn overlapped_plan() -> hpf_stencil::exec::ExecPlan {
    let kernel = Kernel::compile(NINE_POINT16, CompileOptions::full()).unwrap();
    let mut machine = Machine::new(MachineConfig::with_grid(vec![2, 2]));
    let cfg = ExecConfig::new().engine(Engine::ThreadedOverlap).backend(Backend::Bytecode);
    let plan =
        hpf_stencil::exec::ExecPlan::build(&mut machine, &kernel.compiled.node, &cfg).unwrap();
    assert!(plan.overlap_windows_per_step() > 0, "fixture must produce overlap windows");
    assert!(plan.verify().is_empty(), "compiler-built plan must verify clean");
    plan
}

/// Drain-reorder fault: clearing the barriers that order dependent drains
/// must trip the happens-before check (PL002).
#[test]
fn cleared_drain_barriers_are_killed() {
    let mut plan = overlapped_plan();
    assert!(plan.corrupt_clear_barriers(), "fixture must carry drain-order barriers");
    let diags = plan.verify();
    assert!(diags.iter().any(|d| d.code == "PL002"), "expected PL002, got {diags:?}");
}

/// Widening an interior sweep into cells a pending receive writes must
/// trip the race check (PL001).
#[test]
fn widened_interiors_are_killed() {
    let mut plan = overlapped_plan();
    assert!(plan.corrupt_widen_interior(), "fixture must have split PEs");
    let diags = plan.verify();
    assert!(diags.iter().any(|d| d.code == "PL001"), "expected PL001, got {diags:?}");
}

/// Posting the same pooled buffer twice without an intervening drain must
/// trip the aliasing check (PL003).
#[test]
fn duplicated_posts_are_killed() {
    let mut plan = overlapped_plan();
    assert!(plan.corrupt_duplicate_post(), "fixture must have a post to duplicate");
    let diags = plan.verify();
    assert!(diags.iter().any(|d| d.code == "PL003"), "expected PL003, got {diags:?}");
}

/// Widening a superstep trapezoid makes a fused sub-step claim ghost cells
/// the deep exchange never filled: the per-PE forward coverage simulation
/// must trip PL004, at every eligible depth.
#[test]
fn widened_trapezoids_are_killed() {
    let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
    for k in [2usize, 4] {
        let halo = hpf_stencil::exec::superstep_halo(&kernel.compiled.node, k)
            .expect("Problem 9 is superstep-eligible");
        let mut machine = Machine::new(MachineConfig::with_grid(vec![2, 2]).halo(halo.max(1)));
        let cfg = ExecConfig::new().backend(Backend::Bytecode).superstep(k);
        let mut plan =
            hpf_stencil::exec::ExecPlan::build(&mut machine, &kernel.compiled.node, &cfg).unwrap();
        assert!(plan.supersteps_per_step() > 0, "fixture must build a depth-{k} superstep");
        assert!(plan.verify().is_empty(), "compiler-built superstep plan must verify clean");
        assert!(plan.corrupt_widen_trapezoid(), "fixture must carry a trapezoid to widen");
        let diags = plan.verify();
        assert!(diags.iter().any(|d| d.code == "PL004"), "expected PL004, got {diags:?}");
    }
}

const COMBOS: [(Engine, Backend); 6] = [
    (Engine::Sequential, Backend::Interp),
    (Engine::Sequential, Backend::Bytecode),
    (Engine::Threaded, Backend::Interp),
    (Engine::Threaded, Backend::Bytecode),
    (Engine::ThreadedOverlap, Backend::Interp),
    (Engine::ThreadedOverlap, Backend::Bytecode),
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random stencil programs, compiled with invariant checking forced
    /// on, must build checked plans (a checked build hard-fails on any
    /// verifier rejection) and re-verify clean, on every engine × backend
    /// combination.
    #[test]
    fn random_kernels_verify_clean_across_matrix(
        seed in 0u64..1_000_000,
        stmts in 1usize..=3,
        time_loop in prop_oneof![Just(None), Just(Some(2usize))],
    ) {
        let spec = WorkloadSpec { n: 10, stmts, time_loop, ..Default::default() };
        let src = generate(&spec, seed);
        let kernel =
            Kernel::compile(&src, CompileOptions::full().check_invariants(true)).unwrap();
        for (engine, backend) in COMBOS {
            let plan = kernel
                .plan(MachineConfig::with_grid(vec![2, 2]))
                .config(ExecConfig::new().engine(engine).backend(backend))
                .build()
                .unwrap_or_else(|e| panic!("{engine:?}/{backend:?}: checked build rejected: {e}"));
            let diags = plan.verify_static();
            prop_assert!(diags.is_empty(), "{engine:?}/{backend:?}: {diags:?}");
        }
    }
}
