//! Execution correctness of the offset-array pass's repair paths (§3.1:
//! "when a criterion has been violated, it may be necessary to insert an
//! array copy statement into the program to maintain its original
//! semantics").

use hpf_stencil::ir::Stmt;
use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Engine, Kernel, MachineConfig};

fn init(p: &[i64]) -> f64 {
    ((p[0] * 11 + p[1] * 5) as f64 * 0.07).sin()
}

/// Chained shifts whose composition exceeds the overlap width: the inner
/// shift converts, the outer is kept as a full shift, and a repair copy
/// materializes the inner offset array.
#[test]
fn repair_copy_for_over_wide_chain_executes_correctly() {
    let src = "PARAM N = 16\nREAL A(N,N), B(N,N)\nA = CSHIFT(CSHIFT(B,1,1), 1, 1) + B\n";
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(kernel.stats().offset.converted, 1);
    assert_eq!(kernel.stats().offset.kept, 1);
    assert_eq!(kernel.stats().offset.copies_inserted, 1);
    let mut copies = 0;
    kernel.compiled.array_ir.for_each_stmt(&mut |s| {
        if matches!(s, Stmt::Copy { .. }) {
            copies += 1;
        }
    });
    assert_eq!(copies, 1);
    for engine in [Engine::Sequential, Engine::Threaded] {
        kernel
            .runner(MachineConfig::sp2_2x2())
            .init("B", init)
            .engine(engine)
            .run_verified(&["A"], 0.0)
            .unwrap();
    }
}

/// A source update between a shift's definition and one of its uses
/// violates the sharing criterion; the pass conservatively keeps the full
/// shift (equivalent to converting optimistically and repairing with a
/// copy, which moves the same data), and execution stays exact.
#[test]
fn source_update_between_def_and_use_keeps_full_shift() {
    let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N), R(N,N), S(N,N)
R = CSHIFT(U,1,1)
S = R + U
U = S
T = CSHIFT(R,1,2)
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    // R's conversion is blocked (U is overwritten before T's use of R);
    // T's shift of the real array R still converts.
    assert!(kernel.stats().offset.kept >= 1);
    assert!(kernel.stats().offset.converted >= 1);
    kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", init)
        .run_verified(&["T", "S", "U"], 0.0)
        .unwrap();
}

/// Mixed-kind chains refuse composition and repair instead.
#[test]
fn mixed_kind_chain_repairs_and_executes() {
    let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
T = EOSHIFT(CSHIFT(U,1,1), 1, 2, BOUNDARY=2.5) + U
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    // Inner circular shift converts; the end-off shift over the offset
    // array must not compose (kinds differ).
    assert_eq!(kernel.stats().offset.converted, 1);
    assert_eq!(kernel.stats().offset.kept, 1);
    kernel.runner(MachineConfig::sp2_2x2()).init("U", init).run_verified(&["T"], 0.0).unwrap();
}

/// End-off cancellation chains (the truncation-destroys-information case
/// found by the property tests) must execute correctly via the repair path.
#[test]
fn endoff_cancellation_chain_executes_correctly() {
    let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N)
T = EOSHIFT(EOSHIFT(U,-1,1), 1, 1) + 0.5 * U
"#;
    for stage in Stage::all() {
        let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
        kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .run_verified(&["T"], 0.0)
            .unwrap_or_else(|e| panic!("{stage:?}: {e}"));
    }
}

/// Conflicting shift kinds over the same ghost region: one conversion wins,
/// the other stays a full shift — and execution is still exact.
#[test]
fn conflicting_ghost_kinds_execute_correctly() {
    let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N)
T = CSHIFT(U,1,1) + EOSHIFT(U,1,1) + CSHIFT(U,1,1)
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert!(kernel.stats().offset.kept >= 1);
    kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", init)
        .engine(Engine::Threaded)
        .run_verified(&["T"], 0.0)
        .unwrap();
}
