//! §6 robustness: the CM-2-style pattern matcher accepts only the canonical
//! single-statement CSHIFT form; the normalization-based pipeline compiles
//! every variation to the same minimal communication.

use hpf_stencil::baselines::cm2::{self, RecognizeError};
use hpf_stencil::frontend::compile_source;
use hpf_stencil::passes::{compile, CompileOptions};
use hpf_stencil::presets;

#[test]
fn cm2_accepts_canonical_form_only() {
    let canonical = compile_source(&presets::nine_point_cshift(32)).unwrap();
    let pattern = cm2::recognize(&canonical).expect("canonical form recognized");
    assert_eq!(pattern.taps.len(), 9);

    for (src, want) in [
        (presets::problem9(32), RecognizeError::MultiStatement),
        (presets::nine_point_array(32), RecognizeError::ArraySyntax),
        (presets::jacobi(32, 2), RecognizeError::UnsupportedShape),
    ] {
        let got = cm2::recognize(&compile_source(&src).unwrap()).unwrap_err();
        assert_eq!(got, want, "for source:\n{src}");
    }
}

#[test]
fn pipeline_compiles_every_variation_identically() {
    // Where the pattern matcher fails, the normalization-based strategy
    // still reaches 4 messages and 1 fused nest for the 9-point stencil.
    for src in
        [presets::nine_point_cshift(32), presets::nine_point_array(32), presets::problem9(32)]
    {
        let checked = compile_source(&src).unwrap();
        let ours = compile(&checked, CompileOptions::full());
        assert_eq!(ours.stats.comm_ops, 4);
        assert_eq!(ours.stats.nests, 1);
    }
}

#[test]
fn pipeline_handles_near_stencils() {
    // "they benefit those computations that only slightly resemble
    // stencils" (§6): mixed operators, nested expressions, EOSHIFT.
    let src = r#"
PARAM N = 16
REAL A(N,N), B(N,N), C(N,N)
REAL W = 0.5
B = W * (CSHIFT(A,1,1) - CSHIFT(A,-1,1)) / 2.0
C = B * B + EOSHIFT(A + B, SHIFT=1, DIM=2, BOUNDARY=1.0)
"#;
    let checked = compile_source(src).unwrap();
    assert!(cm2::recognize(&checked).is_err());
    let ours = compile(&checked, CompileOptions::full());
    assert!(ours.stats.offset.converted >= 2);
    // Runs correctly too.
    use hpf_stencil::{Engine, Kernel, MachineConfig};
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    kernel
        .runner(MachineConfig::sp2_2x2())
        .init("A", |p| (p[0] + p[1]) as f64 * 0.1)
        .engine(Engine::Threaded)
        .run_verified(&["B", "C"], 1e-12)
        .unwrap();
}
