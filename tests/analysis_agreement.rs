//! Agreement between the static analyzer and the runtime halo-poisoning
//! harness: HS001 is the static twin of poisoned-overlap verification, so
//! the two must classify every program the same way.
//!
//! * Any kernel whose poisoned-halo run diverges from the reference
//!   interpreter must be flagged HS001 statically.
//! * Equivalently (same assertion, contrapositive): a kernel the analyzer
//!   leaves HS001-clean must survive a poisoned-halo run. The analyzer may
//!   still be conservative the other way — a flagged read whose value is
//!   multiplied by a zero coefficient passes at runtime.
//!
//! Uncovered reads are planted with [`Kernel::drop_overlap_shift`], the
//! same mutation `hpfsc --drop-shift` exposes.

use hpf_stencil::ir::Stmt;
use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::runtime::MachineConfig;
use hpf_stencil::{analysis, max_abs_diff, Kernel};
use proptest::prelude::*;

/// One random stencil term: `coeff * CHAIN(src)`, chain of up to two unit
/// shifts.
#[derive(Clone, Debug)]
struct Term {
    coeff: f64,
    src: usize, // index into ["U", "V"]
    shifts: Vec<(i64, usize)>,
    endoff: bool,
}

/// One random statement: a full-space assignment of a sum of terms to T or
/// V, optionally accumulating.
#[derive(Clone, Debug)]
struct RandStmt {
    dst: usize, // 1 = T, 2 = V
    accumulate: bool,
    terms: Vec<Term>,
}

#[derive(Clone, Debug)]
struct RandKernel {
    n: usize,
    stmts: Vec<RandStmt>,
    in_loop: Option<usize>,
}

const NAMES: [&str; 3] = ["U", "T", "V"];

impl RandKernel {
    fn source(&self) -> String {
        let mut s = format!("PROGRAM rand\nPARAM N = {}\nREAL U(N,N), T(N,N), V(N,N)\n", self.n);
        let mut body = String::new();
        for st in &self.stmts {
            let dst = NAMES[st.dst];
            let mut rhs = if st.accumulate { dst.to_string() } else { String::new() };
            for t in &st.terms {
                let mut operand = NAMES[t.src].to_string();
                for (amt, dim) in &t.shifts {
                    let intr = if t.endoff { "EOSHIFT" } else { "CSHIFT" };
                    operand = format!("{intr}({operand},{amt},{})", dim + 1);
                }
                let term = format!("{} * {operand}", t.coeff);
                if rhs.is_empty() {
                    rhs = term;
                } else {
                    rhs = format!("{rhs} + {term}");
                }
            }
            if rhs.is_empty() {
                rhs = "0".to_string();
            }
            body.push_str(&format!("{dst} = {rhs}\n"));
        }
        if let Some(iters) = self.in_loop {
            s.push_str(&format!("DO {iters} TIMES\n{body}ENDDO\n"));
        } else {
            s.push_str(&body);
        }
        s.push_str("END\n");
        s
    }
}

fn term_strategy() -> impl Strategy<Value = Term> {
    (
        -4i32..=4,
        0usize..2,
        prop::collection::vec((prop_oneof![Just(-1i64), Just(1)], 0usize..2), 0..=2),
        any::<bool>(),
    )
        .prop_map(|(c, src, shifts, endoff)| Term {
            coeff: c as f64 * 0.25,
            src: if src == 0 { 0 } else { 2 },
            shifts,
            endoff,
        })
}

fn stmt_strategy() -> impl Strategy<Value = RandStmt> {
    (
        prop_oneof![Just(1usize), Just(2)],
        any::<bool>(),
        prop::collection::vec(term_strategy(), 1..=4),
    )
        .prop_map(|(dst, accumulate, terms)| RandStmt { dst, accumulate, terms })
}

fn kernel_strategy() -> impl Strategy<Value = RandKernel> {
    (
        prop_oneof![Just(6usize), Just(8), Just(12)],
        prop::collection::vec(stmt_strategy(), 1..=4),
        prop_oneof![Just(None), Just(Some(2usize))],
    )
        .prop_map(|(n, stmts, in_loop)| RandKernel { n, stmts, in_loop })
}

fn grid_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![Just(vec![1, 1]), Just(vec![2, 2]), Just(vec![1, 2]), Just(vec![2, 1])]
}

/// Poison the halos, step once, and compare every user array against the
/// reference interpreter. `true` means some array diverged.
fn poisoned_run_diverges(kernel: &Kernel, grid: Vec<usize>) -> bool {
    let mut plan = kernel
        .plan(MachineConfig::with_grid(grid))
        .init("U", |p| ((p[0] * 7 + p[1] * 3) as f64 * 0.1).sin())
        .init("V", |p| ((p[0] - p[1]) as f64 * 0.05).cos())
        .build()
        .expect("plan build");
    plan.machine.poison_halos(f64::MAX);
    plan.step();
    let oracle = kernel
        .oracle()
        .init("U", |p| ((p[0] * 7 + p[1] * 3) as f64 * 0.1).sin())
        .init("V", |p| ((p[0] - p[1]) as f64 * 0.05).cos())
        .run();
    NAMES.iter().any(|name| {
        let id = kernel.array_id(name).unwrap();
        if !plan.machine.is_allocated(id) {
            return false; // the program never references it
        }
        let got = plan.gather(name).unwrap();
        let want = &oracle.arrays[&id].data;
        // NaN-aware: a poisoned value that laundered into NaN is a diff too.
        let diff = max_abs_diff(&got, want);
        diff.is_nan() || diff > 1e-9
    })
}

fn count_overlap_shifts(kernel: &Kernel) -> usize {
    let mut n = 0;
    kernel.compiled.array_ir.for_each_stmt(&mut |s| {
        if matches!(s, Stmt::OverlapShift { .. }) {
            n += 1;
        }
    });
    n
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Delete one OVERLAP_SHIFT from a compiled kernel: if the poisoned
    /// runtime run then diverges from the oracle, HS001 must have flagged
    /// it; if HS001 stayed quiet, the dropped shift was redundant and the
    /// run must still pass.
    #[test]
    fn dropped_shift_agreement(
        k in kernel_strategy(),
        grid in grid_strategy(),
        stage_idx in 1usize..5, // OffsetArrays.. — Original has no overlap shifts
        drop_idx in 0usize..16,
    ) {
        let src = k.source();
        let stage = Stage::all()[stage_idx];
        let mut kernel = Kernel::compile(&src, CompileOptions::upto(stage))
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let shifts = count_overlap_shifts(&kernel);
        if shifts == 0 {
            return; // nothing to drop; the base property test covers this
        }
        prop_assert!(kernel.drop_overlap_shift(drop_idx % shifts));
        let flagged = kernel.lint().iter().any(|d| d.code == analysis::HS001);
        let diverged = poisoned_run_diverges(&kernel, grid.clone());
        prop_assert!(
            !diverged || flagged,
            "poisoned run diverged but the analyzer reported no HS001 for:\n{src}\
             (stage {stage:?}, grid {grid:?}, dropped shift {})",
            drop_idx % shifts
        );
    }

    /// Pipeline output is always analyzer-clean of errors, and an
    /// analyzer-clean kernel survives the poisoned-halo run at every stage.
    #[test]
    fn clean_kernels_pass_poisoned_runtime(
        k in kernel_strategy(),
        grid in grid_strategy(),
        stage_idx in 0usize..5,
    ) {
        let src = k.source();
        let stage = Stage::all()[stage_idx];
        let kernel = Kernel::compile(&src, CompileOptions::upto(stage))
            .unwrap_or_else(|e| panic!("compile failed for:\n{src}\n{e}"));
        let diags = kernel.lint();
        prop_assert!(
            !analysis::has_errors(&diags),
            "pipeline output flagged by its own analyzer for:\n{src}\n{}",
            analysis::render_text(&diags)
        );
        prop_assert!(
            !poisoned_run_diverges(&kernel, grid.clone()),
            "analyzer-clean kernel diverged under poisoned halos for:\n{src}\
             (stage {stage:?}, grid {grid:?})"
        );
    }
}
