//! Differential testing of the tracing subsystem: recording per-PE event
//! traces must be **observation only**. For every engine × backend
//! combination, a traced run and an untraced run of the same kernel must
//! produce bitwise-identical arrays and identical per-PE operation
//! counters — the recorder may time the execution but never perturb it.
//! The Chrome `trace_event` export must also be well-formed: it
//! round-trips through the crate's own JSON parser, and within every
//! track the event timestamps are monotonically non-decreasing.

use hpf_stencil::runtime::PeStats;
use hpf_stencil::trace::json::{self, Value};
use hpf_stencil::trace::Trace;
use hpf_stencil::{presets, Backend, CompileOptions, Engine, ExecConfig, Kernel, MachineConfig};

const COMBOS: [(Engine, Backend); 6] = [
    (Engine::Sequential, Backend::Interp),
    (Engine::Sequential, Backend::Bytecode),
    (Engine::Threaded, Backend::Interp),
    (Engine::Threaded, Backend::Bytecode),
    (Engine::ThreadedOverlap, Backend::Interp),
    (Engine::ThreadedOverlap, Backend::Bytecode),
];

/// Step Problem 9 `steps` times under `cfg`; return the gathered output,
/// the per-PE counters, and the trace (empty when tracing was off).
fn run_problem9(kernel: &Kernel, cfg: ExecConfig, steps: usize) -> (Vec<f64>, Vec<PeStats>, Trace) {
    let mut plan = kernel
        .plan(MachineConfig::sp2_2x2())
        .init("U", |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin())
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{cfg:?} failed to build: {e}"));
    plan.iterate(steps);
    let out = plan.gather("T").unwrap();
    let stats = plan.stats().per_pe;
    let trace = plan.take_trace();
    (out, stats, trace)
}

/// Tracing on vs off is invisible to the computation: bitwise-identical
/// arrays and identical per-PE counters across the whole engine × backend
/// matrix.
#[test]
fn tracing_never_perturbs_execution() {
    let kernel = Kernel::compile(&presets::problem9(24), CompileOptions::full()).unwrap();
    for (engine, backend) in COMBOS {
        let base = ExecConfig::new().engine(engine).backend(backend);
        let (out_off, stats_off, trace_off) = run_problem9(&kernel, base, 3);
        let (out_on, stats_on, trace_on) = run_problem9(&kernel, base.trace(true), 3);
        assert_eq!(out_off, out_on, "traced run diverged bitwise under {engine:?}/{backend:?}");
        assert_eq!(
            stats_off, stats_on,
            "traced run changed per-PE counters under {engine:?}/{backend:?}"
        );
        assert_eq!(trace_off.total_events(), 0, "untraced run recorded events");
        assert!(trace_on.total_events() > 0, "traced run recorded nothing");
    }
}

/// The Chrome export is well-formed JSON that round-trips through the
/// crate's own parser, with per-track monotonic timestamps and one track
/// per PE (plus the compile-passes and driver tracks).
#[test]
fn chrome_export_is_well_formed() {
    let kernel = Kernel::compile(&presets::problem9(24), CompileOptions::full()).unwrap();
    for (engine, backend) in COMBOS {
        let cfg = ExecConfig::new().engine(engine).backend(backend).trace(true);
        let (_, _, trace) = run_problem9(&kernel, cfg, 2);
        let names: Vec<&str> = trace.tracks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"compile-passes"), "{engine:?}/{backend:?}: {names:?}");
        assert!(names.contains(&"driver"), "{engine:?}/{backend:?}: {names:?}");
        for pe in 0..4 {
            let name = format!("PE {pe}");
            assert!(names.iter().any(|n| **n == name), "{engine:?}/{backend:?}: {names:?}");
        }
        for track in &trace.tracks {
            let mut last = 0u64;
            for ev in &track.events {
                assert!(
                    ev.start_ns >= last,
                    "track {} timestamps regress under {engine:?}/{backend:?}",
                    track.name
                );
                last = ev.start_ns;
            }
        }
        let parsed = json::parse(&trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("{engine:?}/{backend:?} export does not parse: {e}"));
        assert!(matches!(parsed, Value::Object(_)), "top level is not an object");
        let Some(Value::Array(events)) = parsed.get("traceEvents") else {
            panic!("no traceEvents array")
        };
        let spans =
            events.iter().filter(|e| e.get("ph") == Some(&Value::String("X".into()))).count();
        assert_eq!(spans, trace.total_events(), "span count drifted through the export");
    }
}
