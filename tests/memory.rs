//! Figure 11's memory behaviour: the naive single-statement translation
//! exhausts the per-PE budget through its twelve CSHIFT temporaries while
//! the multi-statement form (and, a fortiori, the optimized translation)
//! fits.

use hpf_stencil::baselines::naive;
use hpf_stencil::passes::{CompileOptions, TempPolicy};
use hpf_stencil::{CoreError, Engine, Kernel, MachineConfig, RtError};

fn budget_for(n: usize, arrays: usize) -> usize {
    let e = n / 2 + 2;
    arrays * e * e * 8
}

#[test]
fn single_statement_exhausts_budget_where_multi_fits() {
    let n = 64;
    // Budget for 6 arrays/PE: multi-statement needs 5, single needs 14.
    let budget = budget_for(n, 6);

    let single =
        Kernel::compile(&hpf_stencil::presets::nine_point_cshift(n), naive::naive_options())
            .unwrap();
    let mut cfg = MachineConfig::sp2_2x2();
    cfg.mem_budget = Some(budget);
    let err = match single.runner(cfg.clone()).init("SRC", |_| 1.0).run() {
        Err(e) => e,
        Ok(_) => panic!("expected memory exhaustion"),
    };
    assert!(matches!(err, CoreError::Runtime(RtError::MemoryExhausted { .. })));

    let mut multi_opts = naive::naive_options();
    multi_opts.temp_policy = TempPolicy::Reuse;
    let multi = Kernel::compile(&hpf_stencil::presets::problem9(n), multi_opts).unwrap();
    multi
        .runner(cfg.clone())
        .init("U", |_| 1.0)
        .run()
        .expect("multi-statement form fits the budget");

    // The optimized translation fits in an even smaller budget (U and T).
    let ours = Kernel::compile(&hpf_stencil::presets::problem9(n), CompileOptions::full()).unwrap();
    let mut tight = MachineConfig::sp2_2x2();
    tight.mem_budget = Some(budget_for(n, 3));
    ours.runner(tight)
        .init("U", |_| 1.0)
        .engine(Engine::Threaded)
        .run()
        .expect("offset arrays eliminate the temporaries");
}

#[test]
fn peak_memory_ordering_across_translations() {
    let n = 32;
    let run = |kernel: &Kernel, input: &str| {
        kernel
            .runner(MachineConfig::sp2_2x2())
            .init(input, |_| 1.0)
            .run()
            .unwrap()
            .stats()
            .max_peak_bytes()
    };
    let single =
        Kernel::compile(&hpf_stencil::presets::nine_point_cshift(n), naive::naive_options())
            .unwrap();
    let mut multi_opts = naive::naive_options();
    multi_opts.temp_policy = TempPolicy::Reuse;
    let multi = Kernel::compile(&hpf_stencil::presets::problem9(n), multi_opts).unwrap();
    let ours = Kernel::compile(&hpf_stencil::presets::problem9(n), CompileOptions::full()).unwrap();

    let p_single = run(&single, "SRC");
    let p_multi = run(&multi, "U");
    let p_ours = run(&ours, "U");
    assert!(p_single > p_multi, "{p_single} vs {p_multi}");
    assert!(p_multi > p_ours, "{p_multi} vs {p_ours}");
    // Ratios roughly 14 : 5 : 2 arrays.
    assert!(p_single as f64 / p_ours as f64 > 5.0);
}

#[test]
fn allocation_failure_is_all_or_nothing() {
    let n = 64;
    let kernel =
        Kernel::compile(&hpf_stencil::presets::nine_point_cshift(n), naive::naive_options())
            .unwrap();
    let mut cfg = MachineConfig::sp2_2x2();
    cfg.mem_budget = Some(budget_for(n, 6));
    let mut machine = hpf_stencil::Machine::new(cfg);
    let src = kernel.array_id("SRC").unwrap();
    machine.alloc(src, kernel.checked.symbols.array(src)).unwrap();
    let before = machine.pes[0].cur_bytes;
    let err = hpf_stencil::exec::execute_seq(&mut machine, &kernel.compiled.node).unwrap_err();
    assert!(matches!(err, RtError::MemoryExhausted { .. }));
    // Whatever was allocated stayed consistent: no PE over budget.
    for pe in &machine.pes {
        assert!(pe.cur_bytes <= budget_for(n, 6));
    }
    assert!(machine.pes[0].cur_bytes >= before);
}
