//! Whole-pipeline correctness: every preset kernel, compiled at every
//! cumulative stage, run on several PE grids with both engines, must match
//! the reference interpreter exactly.

use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Engine, Kernel, MachineConfig};

fn init(p: &[i64]) -> f64 {
    ((p[0] * 17 + p[1] * 29) as f64 * 0.01).sin() + 0.5
}

fn check(
    source: &str,
    inputs: &[&str],
    outputs: &[&str],
    grid: &[usize],
    stage: Stage,
    engine: Engine,
) {
    let kernel = Kernel::compile(source, CompileOptions::upto(stage)).unwrap();
    let mut runner = kernel.runner(MachineConfig::with_grid(grid.to_vec()));
    for name in inputs {
        runner = runner.init(name, init);
    }
    runner
        .engine(engine)
        .run_verified(outputs, 0.0)
        .unwrap_or_else(|e| panic!("{stage:?} on {grid:?} ({engine:?}): {e}"));
}

#[test]
fn five_point_matrix() {
    let src = hpf_stencil::presets::five_point(16);
    for stage in Stage::all() {
        for grid in [&[1usize, 1][..], &[2, 2], &[4, 1]] {
            check(&src, &["SRC"], &["DST"], grid, stage, Engine::Sequential);
        }
    }
    check(&src, &["SRC"], &["DST"], &[2, 2], Stage::MemOpt, Engine::Threaded);
}

#[test]
fn nine_point_cshift_matrix() {
    let src = hpf_stencil::presets::nine_point_cshift(16);
    for stage in Stage::all() {
        check(&src, &["SRC"], &["DST"], &[2, 2], stage, Engine::Sequential);
    }
    check(&src, &["SRC"], &["DST"], &[2, 4], Stage::MemOpt, Engine::Threaded);
}

#[test]
fn nine_point_array_matrix() {
    let src = hpf_stencil::presets::nine_point_array(16);
    for stage in Stage::all() {
        check(&src, &["SRC"], &["DST"], &[2, 2], stage, Engine::Sequential);
    }
}

#[test]
fn problem9_matrix() {
    let src = hpf_stencil::presets::problem9(16);
    for stage in Stage::all() {
        for grid in [&[1usize, 1][..], &[2, 2], &[1, 4], &[4, 2]] {
            check(&src, &["U"], &["T"], grid, stage, Engine::Sequential);
        }
        check(&src, &["U"], &["T"], &[2, 2], stage, Engine::Threaded);
    }
}

#[test]
fn jacobi_matrix() {
    let src = hpf_stencil::presets::jacobi(12, 6);
    for stage in Stage::all() {
        check(&src, &["U"], &["U", "T"], &[2, 2], stage, Engine::Sequential);
    }
    check(&src, &["U"], &["U"], &[2, 2], Stage::MemOpt, Engine::Threaded);
}

#[test]
fn image_blur_matrix() {
    let src = hpf_stencil::presets::image_blur(12, 3);
    for stage in Stage::all() {
        check(&src, &["IMG"], &["IMG", "OUT"], &[2, 2], stage, Engine::Sequential);
    }
}

#[test]
fn wave2d_matrix() {
    let src = hpf_stencil::presets::wave2d(12, 5);
    for stage in Stage::all() {
        check(&src, &["U", "UPREV"], &["U", "UPREV"], &[2, 2], stage, Engine::Sequential);
    }
    check(&src, &["U", "UPREV"], &["U"], &[2, 2], Stage::MemOpt, Engine::Threaded);
}

#[test]
fn uneven_block_sizes() {
    // N=10 over a 3-PE axis exercises short and empty trailing blocks.
    let src = hpf_stencil::presets::problem9(10);
    for grid in [&[3usize, 1][..], &[1, 3], &[3, 3]] {
        check(&src, &["U"], &["T"], grid, Stage::MemOpt, Engine::Sequential);
        check(&src, &["U"], &["T"], grid, Stage::Original, Engine::Sequential);
    }
}

#[test]
fn wider_halo_and_longer_shifts() {
    let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
T = CSHIFT(U,2,1) + CSHIFT(U,-2,2) + CSHIFT(CSHIFT(U,2,1),1,2) + U
"#;
    let kernel = Kernel::compile(src, CompileOptions::full().halo(2)).unwrap();
    kernel
        .runner(MachineConfig::sp2_2x2().halo(2))
        .init("U", init)
        .run_verified(&["T"], 0.0)
        .unwrap();
    // All three shifts become overlap shifts with the wider halo.
    assert_eq!(kernel.stats().offset.kept, 0);
}

#[test]
fn collapsed_distribution_runs() {
    let src = r#"
PROGRAM rowdist
PARAM N = 16
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,*)
!HPF$ DISTRIBUTE T(BLOCK,*)
T = CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2)
END
"#;
    // (BLOCK,*) on a (4,1) grid: dim-2 shifts are local wraps.
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    let run = kernel
        .runner(MachineConfig::with_grid([4, 1]))
        .init("U", init)
        .run_verified(&["T"], 0.0)
        .unwrap();
    // Only dim-1 shifts send messages: 2 ops x 4 PEs.
    assert_eq!(run.stats().total_messages(), 8);
    let total = run.stats().total();
    assert!(total.wrap_bytes > 0, "dim-2 shifts wrap locally");
}
