//! `WHERE`-masked array assignments end to end: the paper's §7 argues the
//! optimizations "benefit those computations that only slightly resemble
//! stencils" — masked stencils are the canonical example. A `WHERE` lowers
//! to a `MERGE` (select) over an aligned read of the LHS, so the whole
//! pipeline (offset arrays, partitioning, unioning, memory opts) applies
//! unchanged.

use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Backend, Engine, Kernel, MachineConfig};

fn init(p: &[i64]) -> f64 {
    ((p[0] * 7 + p[1] * 13) as f64 * 0.05).sin()
}

#[test]
fn masked_constant_assignment() {
    let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N)
T = U
WHERE (U > 0) T = 0
"#;
    for stage in Stage::all() {
        let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
        for backend in [Backend::Interp, Backend::Bytecode] {
            let run = kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", init)
                .backend(backend)
                .run_verified(&["T"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?}/{backend:?}: {e}"));
            let t = run.gather(&kernel, "T");
            let u_ref: Vec<f64> = {
                let mut v = Vec::new();
                for i in 1..=12i64 {
                    for j in 1..=12i64 {
                        v.push(init(&[i, j]));
                    }
                }
                v
            };
            for (ti, ui) in t.iter().zip(&u_ref) {
                if *ui > 0.0 {
                    assert_eq!(*ti, 0.0);
                } else {
                    assert_eq!(*ti, *ui);
                }
            }
        }
    }
}

#[test]
fn masked_stencil_with_shifted_mask() {
    // The mask itself contains a shift: the overlap machinery must serve it.
    let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
WHERE (CSHIFT(U,1,1) >= U) T = 0.5 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1))
"#;
    for stage in Stage::all() {
        let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
        for backend in [Backend::Interp, Backend::Bytecode] {
            kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", init)
                .engine(Engine::Threaded)
                .backend(backend)
                .run_verified(&["T"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?}/{backend:?}: {e}"));
        }
    }
    // Offset arrays convert the mask's shifts too.
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(kernel.stats().offset.converted, 3, "{}", kernel.listing());
    assert_eq!(kernel.stats().comm_ops, 2);
}

#[test]
fn masked_assignment_on_section() {
    let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N)
WHERE (U(2:N-1,2:N-1) /= 0) T(2:N-1,2:N-1) = 1 / U(2:N-1,2:N-1)
"#;
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", |p| if (p[0] + p[1]) % 3 == 0 { 0.0 } else { (p[0] * p[1]) as f64 })
        .run_verified(&["T"], 0.0)
        .unwrap();
}

#[test]
fn where_obstructs_pattern_matcher_but_not_us() {
    use hpf_stencil::baselines::cm2;
    use hpf_stencil::frontend::compile_source;
    let src = r#"
PARAM N = 12
REAL S(N,N), D(N,N)
WHERE (S > 0) D = 0.5 * CSHIFT(S,1,1) + 0.5 * S
"#;
    let checked = compile_source(src).unwrap();
    assert_eq!(cm2::recognize(&checked).unwrap_err(), cm2::RecognizeError::Masked);
    let kernel = Kernel::compile(src, CompileOptions::full()).unwrap();
    assert_eq!(kernel.stats().comm_ops, 1);
    kernel.runner(MachineConfig::sp2_2x2()).init("S", init).run_verified(&["D"], 0.0).unwrap();
}

#[test]
fn masked_jacobi_converges_only_inside_region() {
    // Relaxation applied only where a mask array marks the domain.
    let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N), M(N,N)
DO 4 TIMES
T = 0.25 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
WHERE (M > 0) U = T
ENDDO
"#;
    for stage in [Stage::Original, Stage::MemOpt] {
        let kernel = Kernel::compile(src, CompileOptions::upto(stage)).unwrap();
        for backend in [Backend::Interp, Backend::Bytecode] {
            let run = kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", |p| if p[0] == 6 && p[1] == 6 { 64.0 } else { 0.0 })
                .init("M", |p| if p[0] >= 4 && p[0] <= 9 { 1.0 } else { 0.0 })
                .engine(Engine::Threaded)
                .backend(backend)
                .run_verified(&["U", "T"], 0.0)
                .unwrap_or_else(|e| panic!("{stage:?}/{backend:?}: {e}"));
            let u = run.gather(&kernel, "U");
            // Outside the masked band, U keeps its initial zeros.
            assert_eq!(u[0], 0.0);
            assert_eq!(u[11 * 12], 0.0);
            // Inside, heat has spread.
            assert!(u[(6 - 1) * 12 + (6 - 1)].abs() > 0.0);
        }
    }
}

#[test]
fn mask_conformance_checked() {
    let err = Kernel::compile(
        "PARAM N = 8\nREAL U(N,N), T(N,N)\nWHERE (U(1:3,1:3) > 0) T = U\n",
        CompileOptions::full(),
    );
    assert!(err.is_err(), "non-conformant mask must be rejected");
}
